#include "cluster/cluster.hpp"

#include "obs/trace.hpp"
#include "transport/tags.hpp"

namespace rms::cluster {

// Reply-tag layout (window base/size, round-robin wrap) is defined by the
// transport TagRegistry; request_with_deadline relies on a stale reply never
// landing on a tag that was reissued to a different call, which the
// per-node 8M-tag window plus mailbox retirement guarantees.
namespace {
constexpr Tag kReplyTagBase = transport::TagRegistry::kReplyTagBase;
constexpr Tag kReplyTagWindow = transport::TagRegistry::kReplyTagWindow;
}  // namespace

Node::Node(Cluster& cluster, NodeId id)
    : cluster_(cluster),
      id_(id),
      mailbox_(cluster.sim()),
      cpu_(std::make_unique<sim::Resource>(cluster.sim(), 1)),
      next_reply_tag_(transport::TagRegistry::reply_window_start(id)) {
  // The last tag of node id's window is (id + 2) * 2^23 - 1; it must fit Tag.
  RMS_CHECK_MSG(id >= 0 && id <= 254, "node id out of the reply-tag range");
  const ClusterConfig& cfg = cluster.config();
  const auto seed = cfg.seed ^ (0x9e37u + static_cast<std::uint64_t>(id));
  data_disk_ = std::make_unique<disk::Disk>(cluster.sim(), cfg.data_disk, seed);
  swap_disk_ =
      std::make_unique<disk::Disk>(cluster.sim(), cfg.swap_disk, seed * 31);
}

sim::Simulation& Node::sim() { return cluster_.sim(); }

const CostModel& Node::costs() const { return cluster_.config().costs; }

sim::Task<> Node::compute(Time t) {
  RMS_CHECK(t >= 0);
  const Time started = sim().now();
  auto lease = co_await cpu_->acquire();
  co_await sim().timeout(t);
  if (profile_hook_ != nullptr) {
    // The interval includes cpu queueing: the caller's wall time, which is
    // what per-pass attribution accounts for.
    profile_hook_->on_busy(id_, obs::EventKind::kCompute, started, sim().now());
  }
}

void Node::set_profile_hook(obs::ProfileHook* hook) {
  profile_hook_ = hook;
  data_disk_->set_profile_hook(hook, id_);
  swap_disk_->set_profile_hook(hook, id_);
}

void Node::send(net::Message msg) {
  RMS_CHECK(msg.src == id_);
  if (!alive_) {
    // A crashed node is silent: its monitor broadcasts, replies and data
    // pushes all vanish until restart().
    stats_.bump("node.tx_dropped_dead");
    return;
  }
  stats_.bump("node.messages_sent");
  if (msg.dst == id_) {
    // Loopback: no wire, straight into the local mailbox.
    stats_.bump("node.loopback_messages");
    if (!mailbox_.deliver(std::move(msg))) {
      stats_.bump("node.late_replies_dropped");
    }
    return;
  }
  cluster_.network().send(std::move(msg));
}

Tag Node::alloc_reply_tag() {
  const Tag tag = next_reply_tag_;
  // Wrap within this node's private window.
  next_reply_tag_ = kReplyTagBase + id_ * kReplyTagWindow +
                    (next_reply_tag_ - kReplyTagBase - id_ * kReplyTagWindow +
                     1) % kReplyTagWindow;
  mailbox_.open_reply(tag);
  return tag;
}

sim::Task<net::Message> Node::request(net::Message msg) {
  const Tag reply_tag = alloc_reply_tag();
  msg.reply_tag = reply_tag;
  send(std::move(msg));
  net::Message response = co_await mailbox_.recv(reply_tag);
  mailbox_.retire_reply(reply_tag);
  co_return response;
}

sim::Task<RpcResult> Node::request_with_deadline(net::Message msg,
                                                 Time deadline,
                                                 int max_retries) {
  RMS_CHECK(deadline > 0);
  RMS_CHECK(max_retries >= 0);
  const Tag reply_tag = alloc_reply_tag();
  msg.reply_tag = reply_tag;

  RpcResult out;
  out.attempts = 0;
  Time wait = deadline;
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    ++out.attempts;
    send(msg);  // a retry re-sends a copy on the same reply tag
    // Arm the deadline: a loopback sentinel on the reply tag, suppressed if
    // the real reply lands first. Each attempt has its own settled flag, so
    // a sentinel can never be mistaken for a later attempt's timeout.
    auto settled = std::make_shared<bool>(false);
    sim().call_at(sim().now() + wait, [this, reply_tag, settled] {
      if (*settled) return;
      mailbox_.deliver(
          net::Message::make(id_, id_, reply_tag, 0, RpcTimeout{}));
    });
    net::Message r = co_await mailbox_.recv(reply_tag);
    *settled = true;
    if (!r.is<RpcTimeout>()) {
      out.reply.emplace(std::move(r));
      break;
    }
    stats_.bump("node.rpc_deadline_misses");
    if (attempt < max_retries) {
      stats_.bump("node.rpc_retries");
      wait *= 2;  // exponential backoff
    }
  }
  // Retire the tag: drain whatever straggled in (late duplicates' replies,
  // an unsuppressed sentinel), release the channel, and stop admitting
  // further deliveries — anything still in flight for this call is dropped
  // on arrival and counted under node.late_replies_dropped.
  mailbox_.retire_reply(reply_tag);
  co_return out;
}

void Node::crash() {
  RMS_CHECK_MSG(alive_, "crash() on a node that is already down");
  alive_ = false;
  ++epoch_;
  stats_.bump("node.crashes");
  for (const auto& fn : crash_hooks_) fn();
}

void Node::restart() {
  RMS_CHECK_MSG(!alive_, "restart() on a node that is up");
  alive_ = true;
  stats_.bump("node.restarts");
}

Cluster::Cluster(sim::Simulation& sim, ClusterConfig config)
    : sim_(sim),
      config_(std::move(config)),
      network_(sim, config_.num_nodes, config_.link) {
  RMS_CHECK(config_.num_nodes >= 1);
  nodes_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, static_cast<NodeId>(i)));
    Node* node = nodes_.back().get();
    network_.set_delivery(static_cast<NodeId>(i), [node](net::Message m) {
      if (!node->alive()) {
        // In-flight traffic addressed to a crashed node is dropped on the
        // floor — the senders' deadlines are what notice.
        node->stats().bump("node.rx_dropped_dead");
        return;
      }
      if (!node->mailbox().deliver(std::move(m))) {
        // A reply that lost its race against the caller's deadline: the RPC
        // already settled and retired the tag.
        node->stats().bump("node.late_replies_dropped");
      }
    });
  }
}

}  // namespace rms::cluster
