#include "cluster/cluster.hpp"

namespace rms::cluster {

// Reply tags live above all service tags; each node hands them out
// round-robin from its own window so concurrent RPCs never collide.
namespace {
constexpr Tag kReplyTagBase = 1 << 20;
constexpr Tag kReplyTagWindow = 1 << 10;
}  // namespace

Node::Node(Cluster& cluster, NodeId id)
    : cluster_(cluster),
      id_(id),
      mailbox_(cluster.sim()),
      cpu_(std::make_unique<sim::Resource>(cluster.sim(), 1)),
      next_reply_tag_(kReplyTagBase + id * kReplyTagWindow) {
  const ClusterConfig& cfg = cluster.config();
  const auto seed = cfg.seed ^ (0x9e37u + static_cast<std::uint64_t>(id));
  data_disk_ = std::make_unique<disk::Disk>(cluster.sim(), cfg.data_disk, seed);
  swap_disk_ =
      std::make_unique<disk::Disk>(cluster.sim(), cfg.swap_disk, seed * 31);
}

sim::Simulation& Node::sim() { return cluster_.sim(); }

const CostModel& Node::costs() const { return cluster_.config().costs; }

sim::Task<> Node::compute(Time t) {
  RMS_CHECK(t >= 0);
  auto lease = co_await cpu_->acquire();
  co_await sim().timeout(t);
}

void Node::send(net::Message msg) {
  RMS_CHECK(msg.src == id_);
  stats_.bump("node.messages_sent");
  if (msg.dst == id_) {
    // Loopback: no wire, straight into the local mailbox.
    stats_.bump("node.loopback_messages");
    mailbox_.deliver(std::move(msg));
    return;
  }
  cluster_.network().send(std::move(msg));
}

sim::Task<net::Message> Node::request(net::Message msg) {
  const Tag reply_tag = next_reply_tag_;
  // Wrap within this node's private window.
  next_reply_tag_ = kReplyTagBase + id_ * kReplyTagWindow +
                    (next_reply_tag_ - kReplyTagBase - id_ * kReplyTagWindow +
                     1) % kReplyTagWindow;
  msg.reply_tag = reply_tag;
  send(std::move(msg));
  net::Message response = co_await mailbox_.recv(reply_tag);
  co_return response;
}

Cluster::Cluster(sim::Simulation& sim, ClusterConfig config)
    : sim_(sim),
      config_(std::move(config)),
      network_(sim, config_.num_nodes, config_.link) {
  RMS_CHECK(config_.num_nodes >= 1);
  nodes_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, static_cast<NodeId>(i)));
    Node* node = nodes_.back().get();
    network_.set_delivery(static_cast<NodeId>(i), [node](net::Message m) {
      node->mailbox().deliver(std::move(m));
    });
  }
}

}  // namespace rms::cluster
