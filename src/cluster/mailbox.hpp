// Mailbox: tag-demultiplexed message reception for one cluster node.
//
// The network delivers raw messages; the mailbox routes them into per-tag
// channels so independent services on a node (swap server, monitor client,
// HPA counter, ...) can block on their own traffic — the simulated
// equivalent of the paper's per-purpose TLI transport endpoints.
//
// Reply tags (the range TagRegistry::is_reply_tag covers) additionally have
// a lifecycle: Node::alloc_reply_tag opens a tag before the request goes
// out, and the node retires it once the RPC settles. A reply-range deposit
// on a tag that is not open — a duplicate answer after a retry, a reply that
// lost its race against the deadline sentinel — is a late straggler: it is
// dropped and counted instead of queueing forever in a channel nobody will
// ever read.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"
#include "transport/tags.hpp"

namespace rms::cluster {

class Mailbox {
 public:
  explicit Mailbox(sim::Simulation& sim) : sim_(sim) {}

  /// Network delivery hook (also used for loopback sends). Returns false
  /// when the message was a late straggler on a retired reply tag and was
  /// dropped (the caller counts it).
  bool deliver(net::Message msg) {
    if (transport::TagRegistry::is_reply_tag(msg.tag) &&
        open_replies_.count(msg.tag) == 0) {
      return false;
    }
    chan(msg.tag).send(std::move(msg));
    return true;
  }

  /// Awaitable receive of the next message carrying `tag`.
  auto recv(net::Tag tag) { return chan(tag).recv(); }

  /// Non-blocking receive.
  std::optional<net::Message> try_recv(net::Tag tag) {
    return chan(tag).try_recv();
  }

  std::size_t pending(net::Tag tag) { return chan(tag).pending(); }

  // ---- Reply-tag lifecycle ----
  /// Admit deliveries on a freshly allocated reply tag.
  void open_reply(net::Tag tag) { open_replies_.insert(tag); }

  /// The RPC on `tag` settled: drain stragglers already queued (late
  /// duplicates' replies, an unsuppressed deadline sentinel), drop the
  /// channel, and stop admitting further deliveries on the tag.
  void retire_reply(net::Tag tag) {
    open_replies_.erase(tag);
    while (try_recv(tag)) {
    }
    reclaim(tag);
  }

  /// Drop a finished RPC's channel when it is idle (no queued messages, no
  /// waiting receiver). Unique per-call reply tags would otherwise leave one
  /// empty channel per RPC behind for the lifetime of the node.
  void reclaim(net::Tag tag) {
    const auto it = channels_.find(tag);
    if (it == channels_.end()) return;
    if (it->second->pending() == 0 && it->second->waiting_receivers() == 0) {
      channels_.erase(it);
    }
  }

  /// Live channel count (leak checks: one channel per open tag).
  std::size_t channel_count() const { return channels_.size(); }
  /// Reply tags currently open (leak checks).
  std::size_t open_reply_count() const { return open_replies_.size(); }

 private:
  sim::Channel<net::Message>& chan(net::Tag tag) {
    auto it = channels_.find(tag);
    if (it == channels_.end()) {
      it = channels_
               .emplace(tag,
                        std::make_unique<sim::Channel<net::Message>>(sim_))
               .first;
    }
    return *it->second;
  }

  sim::Simulation& sim_;
  std::unordered_map<net::Tag, std::unique_ptr<sim::Channel<net::Message>>>
      channels_;
  std::unordered_set<net::Tag> open_replies_;
};

}  // namespace rms::cluster
