// Mailbox: tag-demultiplexed message reception for one cluster node.
//
// The network delivers raw messages; the mailbox routes them into per-tag
// channels so independent services on a node (swap server, monitor client,
// HPA counter, ...) can block on their own traffic — the simulated
// equivalent of the paper's per-purpose TLI transport endpoints.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/network.hpp"
#include "sim/channel.hpp"
#include "sim/simulation.hpp"

namespace rms::cluster {

class Mailbox {
 public:
  explicit Mailbox(sim::Simulation& sim) : sim_(sim) {}

  /// Network delivery hook (also used for loopback sends).
  void deliver(net::Message msg) { chan(msg.tag).send(std::move(msg)); }

  /// Awaitable receive of the next message carrying `tag`.
  auto recv(net::Tag tag) { return chan(tag).recv(); }

  /// Non-blocking receive.
  std::optional<net::Message> try_recv(net::Tag tag) {
    return chan(tag).try_recv();
  }

  std::size_t pending(net::Tag tag) { return chan(tag).pending(); }

  /// Drop a finished RPC's channel when it is idle (no queued messages, no
  /// waiting receiver). Unique per-call reply tags would otherwise leave one
  /// empty channel per RPC behind for the lifetime of the node.
  void reclaim(net::Tag tag) {
    const auto it = channels_.find(tag);
    if (it == channels_.end()) return;
    if (it->second->pending() == 0 && it->second->waiting_receivers() == 0) {
      channels_.erase(it);
    }
  }

 private:
  sim::Channel<net::Message>& chan(net::Tag tag) {
    auto it = channels_.find(tag);
    if (it == channels_.end()) {
      it = channels_
               .emplace(tag,
                        std::make_unique<sim::Channel<net::Message>>(sim_))
               .first;
    }
    return *it->second;
  }

  sim::Simulation& sim_;
  std::unordered_map<net::Tag, std::unique_ptr<sim::Channel<net::Message>>>
      channels_;
};

}  // namespace rms::cluster
