// Cluster: the simulated ATM-connected PC cluster.
//
// Each Node models one PC of the pilot system (Table 1 of the paper): a
// 200 MHz Pentium Pro charged through CostModel, 64 MB of RAM tracked by
// HostMemoryModel, an IDE data disk and a SCSI swap disk, and one 155 Mbps
// switch port. Nodes exchange messages through Network/Mailbox; a loopback
// send bypasses the wire but still pays the local protocol-stack cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "disk/disk.hpp"
#include "net/network.hpp"
#include "cluster/mailbox.hpp"
#include "sim/process.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"
#include "sim/task.hpp"

namespace rms::obs {
class ProfileHook;
enum class EventKind : std::uint8_t;
}  // namespace rms::obs

namespace rms::cluster {

using net::NodeId;
using net::Tag;

/// CPU cost constants for the 200 MHz Pentium Pro nodes. All virtual-time
/// charging flows through these so the whole timing model is calibrated in
/// one place (see DESIGN.md §5 for the calibration targets).
struct CostModel {
  Time per_tx_parse = usec(12);        // decode one transaction from a block
  Time per_itemset_generate = usec(4); // form a k-subset, hash, enqueue
  Time per_probe = usec(20);           // hash-line search + count increment
  Time per_candidate_gen = usec(4);    // join/prune + hash-partition of one candidate
  Time per_message_cpu = usec(150);    // TCP/TLI stack, per message, each side
  // Memory server CPU per swap request. Calibrated so the *loaded* derived
  // pagefault cost (paper Table 4: Diff/Max ~ 2.3 ms) comes out right: the
  // paper's 1.5 ms "swapping operations cost" residual includes the queueing
  // this simulation models explicitly.
  Time swap_service = usec(1000);
  Time per_update_apply = usec(24);    // memory server: apply one remote update
  Time monitor_sample = usec(400);     // netstat -k kernel statistics read
  Time context_switch = usec(50);
};

/// Occupancy of a node's 64 MB of physical memory. The availability monitor
/// samples this (the simulated `netstat -k`), and fault injection raises
/// `external_bytes` to model "some other processes begin their execution on
/// a memory available node" (§4.2).
struct HostMemoryModel {
  std::int64_t total_bytes = 64LL << 20;
  std::int64_t base_bytes = 24LL << 20;   // OS + resident daemons
  std::int64_t external_bytes = 0;        // injected foreign load
  std::int64_t donated_bytes = 0;         // held swapped-out hash lines

  std::int64_t available() const {
    const std::int64_t used = base_bytes + external_bytes + donated_bytes;
    return used >= total_bytes ? 0 : total_bytes - used;
  }
};

class Cluster;

/// Loopback sentinel a deadline timer deposits on an RPC's reply tag when no
/// reply arrived in time (see Node::request_with_deadline).
struct RpcTimeout {};

/// Outcome of a deadline-bounded RPC. `reply` is empty when every attempt
/// timed out — the callee is presumed crashed.
struct RpcResult {
  std::optional<net::Message> reply;
  int attempts = 1;
  bool ok() const { return reply.has_value(); }
};

class Node {
 public:
  Node(Cluster& cluster, NodeId id);

  NodeId id() const { return id_; }
  Cluster& cluster() { return cluster_; }
  sim::Simulation& sim();
  Mailbox& mailbox() { return mailbox_; }
  HostMemoryModel& memory() { return memory_; }
  const CostModel& costs() const;
  StatsRegistry& stats() { return stats_; }

  disk::Disk& data_disk() { return *data_disk_; }
  disk::Disk& swap_disk() { return *swap_disk_; }

  /// Charge CPU time on this node (single CPU: concurrent processes on the
  /// same node serialize here).
  sim::Task<> compute(Time t);

  /// Feed every CPU charge and disk access on this node to `hook` as busy
  /// intervals (obs profiler; too hot for the trace ring). Null detaches.
  void set_profile_hook(obs::ProfileHook* hook);

  /// Send a message (loopback delivers directly, paying only CPU cost).
  void send(net::Message msg);

  /// Build-and-send convenience.
  template <typename T>
  void send_to(NodeId dst, Tag tag, std::int64_t bytes, T body) {
    send(net::Message::make(id_, dst, tag, bytes, std::move(body)));
  }

  /// Round-trip request: sends to `dst` carrying a unique reply tag and
  /// waits for the reply. The callee must answer with `reply(request, ...)`.
  sim::Task<net::Message> request(net::Message msg);

  /// Round-trip request with a per-attempt deadline, bounded retry, and
  /// exponential backoff (the deadline doubles each retry). The reply tag is
  /// stable across attempts, so a slow reply to an earlier attempt still
  /// completes the call; retransmitted requests are therefore duplicates the
  /// callee must tolerate. Returns an empty `reply` only after every attempt
  /// (`1 + max_retries` sends) timed out — at which point the callee is
  /// treated as crashed by the failover layer.
  sim::Task<RpcResult> request_with_deadline(net::Message msg, Time deadline,
                                             int max_retries = 0);

  // ---- Crash-stop failure model ----
  // A crashed node loses its volatile state (its services register on_crash
  // hooks to wipe it), stops sending (monitor broadcasts, replies), and
  // drops everything arriving on its switch port. restart() brings the node
  // back empty; the epoch counter lets suspended request handlers detect
  // that the world was wiped underneath them and abandon.
  bool alive() const { return alive_; }
  std::uint64_t epoch() const { return epoch_; }
  void crash();
  void restart();
  void on_crash(std::function<void()> fn) {
    crash_hooks_.push_back(std::move(fn));
  }

  /// Answer a request received via `request()`.
  template <typename T>
  void reply(const net::Message& req, std::int64_t bytes, T body) {
    RMS_CHECK_MSG(req.reply_tag >= 0, "reply() to a one-way message");
    send(net::Message::make(id_, req.src, req.reply_tag, bytes,
                            std::move(body)));
  }

 private:
  Tag alloc_reply_tag();

  Cluster& cluster_;
  NodeId id_;
  Mailbox mailbox_;
  HostMemoryModel memory_;
  std::unique_ptr<sim::Resource> cpu_;
  std::unique_ptr<disk::Disk> data_disk_;
  std::unique_ptr<disk::Disk> swap_disk_;
  StatsRegistry stats_;
  Tag next_reply_tag_;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  std::vector<std::function<void()>> crash_hooks_;
  obs::ProfileHook* profile_hook_ = nullptr;
};

struct ClusterConfig {
  std::size_t num_nodes = 24;  // application + memory-available nodes
  net::LinkParams link = net::LinkParams::atm155();
  CostModel costs;
  disk::DiskParams data_disk = disk::DiskParams::caviar_ide();
  disk::DiskParams swap_disk = disk::DiskParams::barracuda_7200();
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  Cluster(sim::Simulation& sim, ClusterConfig config);

  sim::Simulation& sim() { return sim_; }
  net::Network& network() { return network_; }
  const ClusterConfig& config() const { return config_; }

  std::size_t size() const { return nodes_.size(); }
  Node& node(NodeId id) {
    RMS_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[static_cast<std::size_t>(id)];
  }

 private:
  sim::Simulation& sim_;
  ClusterConfig config_;
  net::Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace rms::cluster
