#include "sched/arrivals.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace rms::sched {

const char* arrival_trace_name(ArrivalTrace trace) {
  switch (trace) {
    case ArrivalTrace::kFixed:
      return "fixed";
    case ArrivalTrace::kPoisson:
      return "poisson";
  }
  RMS_CHECK(false);
  return "";
}

std::optional<ArrivalTrace> parse_arrival_trace(const std::string& name) {
  for (ArrivalTrace trace : all_arrival_traces()) {
    if (name == arrival_trace_name(trace)) return trace;
  }
  return std::nullopt;
}

std::vector<ArrivalTrace> all_arrival_traces() {
  return {ArrivalTrace::kFixed, ArrivalTrace::kPoisson};
}

std::vector<Time> poisson_arrivals(std::size_t count, Time mean_interarrival,
                                   std::uint64_t seed, Time start) {
  RMS_CHECK(mean_interarrival > 0);
  // A dedicated stream constant so the trace never correlates with the
  // generator/disk/corruption streams seeded from the same experiment seed.
  Pcg32 rng(seed, /*stream=*/0x5c4ed01eULL);
  std::vector<Time> arrivals;
  arrivals.reserve(count);
  Time at = start;
  for (std::size_t i = 0; i < count; ++i) {
    const double gap =
        rng.exponential(static_cast<double>(mean_interarrival));
    // Round to whole microseconds-of-Time; never zero, so two generated
    // arrivals keep their submission order at distinct instants.
    at += std::max<Time>(1, static_cast<Time>(gap));
    arrivals.push_back(at);
  }
  return arrivals;
}

}  // namespace rms::sched
