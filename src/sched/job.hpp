// rms::sched job model: the contract between the multi-tenant scheduler and
// the workloads it runs.
//
// A scheduled job is a workload from the runtime catalog (hpa, hash_join,
// hash_aggregate) executing on a set of application-node slots it receives
// at admission, inside a simulation and cluster it shares with every other
// running job. The world (cluster, memory servers, availability monitors,
// per-slot brokers and clients) belongs to sched::World and outlives every
// job; a JobRuntime owns only the job-local state — database partitions,
// hash-line stores, the PhasedRunner — and registers its stores in the
// world's SlotTable so world daemons (shortage-triggered migration) can
// reach whatever store currently lives on a slot.
//
// The scheduler knows nothing about concrete workloads: each workload
// module exposes a make_*_job factory returning a JobRuntime, and the bench
// wires specs to factories.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "net/network.hpp"
#include "runtime/workload.hpp"
#include "sim/task.hpp"

namespace rms::cluster {
class Cluster;
}
namespace rms::core {
class HashLineStore;
}
namespace rms::placement {
class MemoryBroker;
}
namespace rms::sim {
class Simulation;
}
namespace rms::obs {
class TraceRecorder;
}

namespace rms::sched {

/// Slot -> live hash-line store bindings. World daemons hold a reference to
/// the table; jobs bind their stores at launch and unbind at harvest, so a
/// shortage broadcast always reaches the store currently executing on the
/// slot (or nothing, between jobs).
class SlotTable {
 public:
  using StoreGetter = std::function<core::HashLineStore*()>;

  void bind(net::NodeId slot, StoreGetter getter) {
    getters_[slot] = std::move(getter);
  }
  void unbind(net::NodeId slot) { getters_.erase(slot); }

  /// The store currently bound to `slot`; null when the slot is idle (or
  /// the bound job has not created its store yet).
  core::HashLineStore* store_at(net::NodeId slot) const {
    const auto it = getters_.find(slot);
    return it == getters_.end() ? nullptr : it->second();
  }

 private:
  std::unordered_map<net::NodeId, StoreGetter> getters_;
};

/// Everything a job needs from the shared world, fixed at admission.
struct JobEnv {
  sim::Simulation* sim = nullptr;
  cluster::Cluster* cluster = nullptr;
  /// This job's application execution slots, in participant order
  /// (participant i runs on app_nodes[i]).
  std::vector<net::NodeId> app_nodes;
  /// World-owned placement brokers, one per slot, same order. The
  /// scheduler has already attached the job's tenant ledger.
  std::vector<placement::MemoryBroker*> brokers;
  /// The shared donor pool (memory-available nodes).
  std::vector<net::NodeId> memory_nodes;
  SlotTable* slots = nullptr;
  /// Shared event sink (null: tracing off). Spans land on slot-node tracks.
  obs::TraceRecorder* trace = nullptr;
};

/// What the scheduler records about a finished (or torn down) job.
struct JobReport {
  bool completed = false;  // the runner's final barrier released
  bool exact = false;      // workload result matches its scalar reference
  /// One workload-specific headline figure ("groups=842", "large=57").
  std::string summary;

  /// Virtual time of the runner's final barrier (absolute; the job's
  /// makespan is total_time minus its admission time).
  Time total_time = 0;
  std::vector<runtime::PassTiming> passes;
  std::vector<std::string> phase_names;

  // Store counters summed over the job's slots.
  std::int64_t pagefaults = 0;
  std::int64_t swap_outs = 0;
  std::int64_t updates_sent = 0;
  std::int64_t degraded_evictions = 0;
};

/// One admitted job's runtime: owns the job-local state and the runner.
/// Lifecycle: launch() (spawn processes into the shared simulation; no
/// virtual time passes) -> on_done fires at the runner's final barrier ->
/// harvest() (collect the report, unbind slots). The runtime stays alive
/// after harvest — a reclaim may still be suspended in its store machinery —
/// and is destroyed with the scheduler, before the world.
class JobRuntime {
 public:
  virtual ~JobRuntime() = default;

  /// The runtime catalog name ("hpa", "hash_aggregate", "hash_join").
  virtual const char* workload_name() const = 0;

  /// Create the job-local world (partitions, stores) and spawn the phased
  /// runner's processes into env.sim. Called once, at admission; must not
  /// advance virtual time. `on_done` fires (synchronously, from the
  /// runner's coordinator) when the job's final barrier releases.
  virtual void launch(const JobEnv& env, std::function<void()> on_done) = 0;

  /// Scheduler-driven revocation: recall up to `target_bytes` of this
  /// job's donated lines (spilling them to the slots' local swap disks)
  /// and return the bytes actually freed. Safe to race the job's own
  /// collection or completion — the store machinery settles in-flight
  /// lines before either side touches them.
  virtual sim::Task<std::int64_t> reclaim(std::int64_t target_bytes) = 0;

  /// Current donated footprint: bytes of primary copies this job's stores
  /// hold on memory nodes right now.
  virtual std::int64_t donated_bytes() const = 0;

  /// Collect the report and unbind the job's slots. Call after on_done
  /// fired, or at teardown for a job that never finished.
  virtual JobReport harvest() = 0;
};

using JobRuntimePtr = std::unique_ptr<JobRuntime>;

}  // namespace rms::sched
