// JobScheduler — multi-tenant admission, arbitration, and reclamation over
// one dynamic remote-memory pool.
//
// The scheduler runs as a process on the world's node 0. It admits jobs
// from an arrival queue onto free application-node slots when the donor
// pool (as seen through its availability view — the same broadcasts the
// paper's §4.2 mechanism feeds every node) reports enough free memory for
// the job's declared demand. Admission is priority-ordered with backfill:
// the highest-priority queued job is considered first, but a lower-priority
// job that fits may start while a bigger one waits for capacity.
//
// When the head-of-line job is blocked on pool bytes and lower-priority
// tenants are holding donated capacity, the scheduler *reclaims*: it caps
// the victim's tenant quota at its post-reclaim footprint (so the freed
// bytes cannot be re-donated while the high-priority job needs them) and
// recalls lines through JobRuntime::reclaim — the store spills them to the
// victim's local swap disks via the existing TieredBackend/disk path, the
// donors release them immediately, and the next monitor broadcast shows the
// recovered capacity to the admission gate. Victim quotas are restored when
// a job completes and returns its share to the pool.
//
// Jobs not admitted within their deadline are shed (counted, traced); jobs
// with no deadline wait indefinitely. Everything is deterministic: one
// virtual clock, arrivals at fixed instants (or a seeded poisson trace),
// ties broken by (priority desc, arrival asc, submission order).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "placement/placement.hpp"
#include "sched/job.hpp"
#include "sched/world.hpp"
#include "sim/process.hpp"

namespace rms::sched {

/// A job submitted to the scheduler: the workload factory plus the
/// scheduling contract (tenant, priority, arrival, resource demand).
struct JobSpec {
  std::string name;      // unique per run; artifact section key
  std::string workload;  // catalog name (reporting only)
  std::int64_t tenant = 0;
  /// Higher preempts lower for pool capacity (reclamation); equal
  /// priorities never reclaim from each other.
  int priority = 0;
  /// Virtual arrival time (overwritten by a generated arrival trace).
  Time arrival = 0;
  /// Application-node slots the job needs (== its participant count).
  std::size_t slots = 1;
  /// Donor-pool bytes the admission gate requires free. A declared
  /// estimate, not a reservation — enforcement is the tenant quota.
  std::int64_t demand_bytes = 0;
  /// Tenant quota while the job runs (-1: unlimited). Reclamation may cap
  /// it lower until a completion returns capacity.
  std::int64_t quota_bytes = -1;
  /// Shed the job if not admitted within this much time after arrival
  /// (0: wait forever).
  Time admission_deadline = 0;
  /// Builds the job's runtime at admission.
  std::function<JobRuntimePtr()> make;
};

enum class JobState { kQueued, kRunning, kCompleted, kShed };

const char* job_state_name(JobState state);

struct JobRecord {
  std::size_t id = 0;  // submission order
  JobSpec spec;
  JobState state = JobState::kQueued;
  Time admitted = -1;
  Time finished = -1;
  /// Leased slot indices (world slot numbers) while running.
  std::vector<std::size_t> slot_indices;
  JobRuntimePtr runtime;
  placement::TenantLedger ledger;
  /// Reclamation pressure this job suffered as a victim.
  std::int64_t reclaimed_bytes = 0;
  int reclaim_events = 0;
  JobReport report;
};

struct SchedulerConfig {
  /// Queue re-examination period between arrival/completion events.
  Time poll_interval = msec(200);
  /// Reclaim donated capacity from lower-priority tenants when the
  /// head-of-line job is blocked on pool bytes.
  bool reclaim_enabled = true;
  /// Safety horizon: abort the run if the scheduler is still waiting past
  /// this virtual time (0: none). Catches a wedged world in tests.
  Time horizon = 0;
  obs::TraceRecorder* trace = nullptr;
};

class JobScheduler {
 public:
  JobScheduler(World& world, SchedulerConfig cfg);

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Queue a job before run(). Returns its id (submission order).
  std::size_t submit(JobSpec spec);

  /// The scheduler process: drives admissions until every job is completed
  /// or shed, then stops the simulation. Spawn once; the caller runs
  /// world.sim().run().
  sim::Process run();

  const std::vector<JobRecord>& jobs() const { return jobs_; }

  struct Stats {
    int admitted = 0;
    int completed = 0;
    int shed = 0;
    int reclaim_events = 0;        // reclaim() calls that freed bytes
    std::int64_t reclaimed_bytes = 0;
    int admission_waits = 0;       // polls where a queued job stayed blocked
    std::size_t peak_queue_depth = 0;
    std::size_t peak_running = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// True when every submitted job reached a terminal state.
  bool drained() const;
  /// Queued job ids in admission order: priority desc, arrival asc, id asc.
  std::vector<std::size_t> admission_order(Time now) const;
  void shed_expired(Time now);
  /// Try to admit `job` now; true on admission.
  bool try_admit(JobRecord& job, Time now);
  void launch(JobRecord& job, Time now);
  void on_job_finished(std::size_t id);
  /// Reclaim up to `deficit` bytes from tenants with priority strictly
  /// below `priority`, lowest first. Returns bytes freed at the donors.
  sim::Task<std::int64_t> reclaim_for(int priority, std::int64_t deficit);

  World& world_;
  SchedulerConfig cfg_;
  std::vector<JobRecord> jobs_;
  std::vector<char> slot_busy_;  // world slot index -> leased
  Stats stats_;
  bool running_ = false;
};

}  // namespace rms::sched
