// Arrival traces for the multi-tenant scheduler's job queue.
//
// Two generators feed JobSpec::arrival:
//   fixed   — keep the arrival times already on the specs (a hand-written
//             schedule; the bench's deterministic headline scenario).
//   poisson — seeded open-loop arrivals: exponential interarrival times
//             with a configurable mean, applied to the specs in submission
//             order. Same seed, same trace — determinism replay compares
//             artifacts byte for byte.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace rms::sched {

enum class ArrivalTrace {
  kFixed,
  kPoisson,
};

/// Canonical flag spelling ("fixed", "poisson") — the --arrival-trace value.
const char* arrival_trace_name(ArrivalTrace trace);
/// Parse an --arrival-trace value; nullopt for an unknown spelling.
std::optional<ArrivalTrace> parse_arrival_trace(const std::string& name);
/// Every trace kind, in declaration order (flag listings, test matrices).
std::vector<ArrivalTrace> all_arrival_traces();

/// `count` arrival times with exponentially distributed interarrivals of
/// the given mean, sorted ascending, starting at `start`. Deterministic in
/// (seed, count, mean, start).
std::vector<Time> poisson_arrivals(std::size_t count, Time mean_interarrival,
                                   std::uint64_t seed, Time start = 0);

}  // namespace rms::sched
