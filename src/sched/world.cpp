#include "sched/world.hpp"

#include "core/availability.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "obs/trace.hpp"

namespace rms::sched {

World::World(sim::Simulation& sim, WorldConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  RMS_CHECK(cfg_.app_nodes >= 1);
  RMS_CHECK(cfg_.memory_nodes >= 1);
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = 1 + cfg_.app_nodes + cfg_.memory_nodes;
  ccfg.costs = cfg_.costs;
  ccfg.seed = cfg_.seed;
  cluster_ = std::make_unique<cluster::Cluster>(sim_, ccfg);

  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i) {
    memory_ids_.push_back(memory_node(i));
  }
  for (std::size_t s = 0; s < cfg_.app_nodes; ++s) {
    slot_ids_.push_back(app_node(s));
  }

  // Persistent per-slot brokers; rng streams keyed by node id like the
  // single-job workloads do.
  brokers_.resize(cfg_.app_nodes);
  for (std::size_t s = 0; s < cfg_.app_nodes; ++s) {
    brokers_[s] = std::make_unique<placement::MemoryBroker>(
        memory_ids_, cfg_.placement,
        static_cast<std::uint64_t>(app_node(s)));
    if (cfg_.trace != nullptr) {
      brokers_[s]->set_trace(cfg_.trace,
                             static_cast<std::int32_t>(app_node(s)));
    }
  }
  sched_broker_ = std::make_unique<placement::MemoryBroker>(
      memory_ids_, cfg_.placement,
      static_cast<std::uint64_t>(scheduler_node()));
}

World::~World() = default;

void World::start() {
  RMS_CHECK_MSG(!started_, "World::start is once-only");
  started_ = true;

  // Every slot and the scheduler subscribe to the monitors' broadcasts.
  std::vector<net::NodeId> subscribers = slot_ids_;
  subscribers.push_back(scheduler_node());

  servers_.resize(cfg_.memory_nodes);
  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i) {
    cluster::Node& node = cluster_->node(memory_node(i));
    core::MemoryServer::Config mscfg;
    mscfg.message_block_bytes = cfg_.message_block_bytes;
    mscfg.trace = cfg_.trace;
    servers_[i] = std::make_unique<core::MemoryServer>(node, mscfg);
    sim_.spawn(servers_[i]->serve());
    sim_.spawn(core::availability_monitor(
        node, core::MonitorConfig{cfg_.monitor_interval, subscribers}));
  }

  // One availability client per slot: refresh the slot's broker, dispatch
  // shortages to whatever store currently runs there.
  for (std::size_t s = 0; s < cfg_.app_nodes; ++s) {
    core::ClientConfig clcfg;
    clcfg.shortage_threshold_bytes = cfg_.shortage_threshold_bytes;
    const net::NodeId slot = app_node(s);
    sim_.spawn(core::availability_client(
        cluster_->node(slot), *brokers_[s], clcfg,
        [this, slot](net::NodeId holder) -> sim::Task<> {
          if (core::HashLineStore* store = slots_.store_at(slot)) {
            co_await store->migrate_away(holder);
          }
        }));
  }

  // The scheduler's own view on node 0; shortages are the slots' problem.
  core::ClientConfig clcfg;
  clcfg.shortage_threshold_bytes = 0;  // available() is never negative
  sim_.spawn(core::availability_client(
      cluster_->node(scheduler_node()), *sched_broker_, clcfg,
      [](net::NodeId) -> sim::Task<> { co_return; }));
}

std::int64_t World::pool_free_bytes() const {
  std::int64_t sum = 0;
  for (net::NodeId id : memory_ids_) sum += sched_broker_->available(id);
  return sum;
}

std::int64_t World::pool_donated_bytes() {
  std::int64_t sum = 0;
  for (net::NodeId id : memory_ids_) {
    sum += cluster_->node(id).memory().donated_bytes;
  }
  return sum;
}

}  // namespace rms::sched
