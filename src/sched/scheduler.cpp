#include "sched/scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "core/memory_server.hpp"
#include "obs/trace.hpp"

namespace rms::sched {

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kCompleted:
      return "completed";
    case JobState::kShed:
      return "shed";
  }
  RMS_CHECK(false);
  return "";
}

JobScheduler::JobScheduler(World& world, SchedulerConfig cfg)
    : world_(world), cfg_(cfg) {
  slot_busy_.assign(world_.num_slots(), 0);
}

std::size_t JobScheduler::submit(JobSpec spec) {
  RMS_CHECK_MSG(!running_, "submit jobs before the scheduler runs");
  RMS_CHECK(spec.slots >= 1 && spec.slots <= world_.num_slots());
  RMS_CHECK(spec.make != nullptr);
  JobRecord rec;
  rec.id = jobs_.size();
  rec.spec = std::move(spec);
  jobs_.push_back(std::move(rec));
  return jobs_.back().id;
}

bool JobScheduler::drained() const {
  for (const JobRecord& j : jobs_) {
    if (j.state == JobState::kQueued || j.state == JobState::kRunning) {
      return false;
    }
  }
  return true;
}

std::vector<std::size_t> JobScheduler::admission_order(Time now) const {
  std::vector<std::size_t> order;
  for (const JobRecord& j : jobs_) {
    if (j.state == JobState::kQueued && j.spec.arrival <= now) {
      order.push_back(j.id);
    }
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    const JobSpec& sa = jobs_[a].spec;
    const JobSpec& sb = jobs_[b].spec;
    if (sa.priority != sb.priority) return sa.priority > sb.priority;
    if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
    return a < b;
  });
  return order;
}

void JobScheduler::shed_expired(Time now) {
  for (JobRecord& j : jobs_) {
    if (j.state != JobState::kQueued || j.spec.admission_deadline <= 0) {
      continue;
    }
    if (now >= j.spec.arrival + j.spec.admission_deadline) {
      j.state = JobState::kShed;
      j.finished = now;
      ++stats_.shed;
      if (cfg_.trace != nullptr) {
        cfg_.trace->instant(obs::EventKind::kJobShed,
                            world_.scheduler_node(), now,
                            static_cast<std::int64_t>(j.id), j.spec.tenant);
      }
    }
  }
}

bool JobScheduler::try_admit(JobRecord& job, Time now) {
  std::size_t free_slots = 0;
  for (char busy : slot_busy_) free_slots += busy == 0;
  if (free_slots < job.spec.slots) return false;
  if (world_.pool_free_bytes() < job.spec.demand_bytes) return false;
  launch(job, now);
  return true;
}

void JobScheduler::launch(JobRecord& job, Time now) {
  // Lease the lowest free slot indices (deterministic placement).
  job.slot_indices.clear();
  for (std::size_t s = 0;
       s < world_.num_slots() && job.slot_indices.size() < job.spec.slots;
       ++s) {
    if (slot_busy_[s] == 0) {
      slot_busy_[s] = 1;
      job.slot_indices.push_back(s);
    }
  }
  RMS_CHECK(job.slot_indices.size() == job.spec.slots);

  job.ledger = placement::TenantLedger{};
  job.ledger.tenant = job.spec.tenant;
  job.ledger.quota_bytes = job.spec.quota_bytes;

  JobEnv env;
  env.sim = &world_.sim();
  env.cluster = &world_.cluster();
  env.memory_nodes = world_.memory_ids();
  env.slots = &world_.slots();
  env.trace = cfg_.trace;
  for (std::size_t s : job.slot_indices) {
    env.app_nodes.push_back(world_.app_node(s));
    placement::MemoryBroker& broker = world_.broker_at(s);
    broker.set_tenant_ledger(&job.ledger);
    env.brokers.push_back(&broker);
  }

  job.runtime = job.spec.make();
  RMS_CHECK(job.runtime != nullptr);
  job.state = JobState::kRunning;
  job.admitted = now;
  ++stats_.admitted;
  std::size_t running = 0;
  for (const JobRecord& j : jobs_) running += j.state == JobState::kRunning;
  stats_.peak_running = std::max(stats_.peak_running, running);
  if (cfg_.trace != nullptr) {
    cfg_.trace->instant(obs::EventKind::kJobAdmit, world_.scheduler_node(),
                        now, static_cast<std::int64_t>(job.id),
                        job.spec.tenant);
  }

  const std::size_t id = job.id;
  job.runtime->launch(env, [this, id] { on_job_finished(id); });
}

void JobScheduler::on_job_finished(std::size_t id) {
  JobRecord& job = jobs_[id];
  RMS_CHECK(job.state == JobState::kRunning);
  const Time now = world_.sim().now();

  // Harvest first (it unbinds the job's slots from the SlotTable), then
  // return every resource the job leased.
  job.report = job.runtime->harvest();
  job.state = JobState::kCompleted;
  job.finished = now;
  ++stats_.completed;

  for (std::size_t s : job.slot_indices) {
    world_.broker_at(s).set_tenant_ledger(nullptr);
    slot_busy_[s] = 0;
    // Straggler copies (normally none: a completed job fetched everything
    // home) return to the donor pool immediately.
    for (std::size_t m = 0; m < world_.config().memory_nodes; ++m) {
      world_.server_at(m).release_owner(world_.app_node(s));
    }
  }

  // The tenant's share is back in the pool: lift any reclamation caps so
  // the survivors can grow into the freed capacity again.
  for (JobRecord& other : jobs_) {
    if (other.state == JobState::kRunning) {
      other.ledger.quota_bytes = other.spec.quota_bytes;
    }
  }

  if (cfg_.trace != nullptr) {
    cfg_.trace->instant(obs::EventKind::kJobDone, world_.scheduler_node(),
                        now, static_cast<std::int64_t>(job.id),
                        job.spec.tenant);
  }
}

sim::Task<std::int64_t> JobScheduler::reclaim_for(int priority,
                                                  std::int64_t deficit) {
  // Victims: running tenants with strictly lower priority, poorest claim
  // first (priority asc, then submission order) — equal priorities never
  // reclaim from each other.
  std::vector<std::size_t> victims;
  for (const JobRecord& j : jobs_) {
    if (j.state == JobState::kRunning && j.spec.priority < priority) {
      victims.push_back(j.id);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [this](std::size_t a, std::size_t b) {
              const int pa = jobs_[a].spec.priority;
              const int pb = jobs_[b].spec.priority;
              if (pa != pb) return pa < pb;
              return a < b;
            });

  std::int64_t freed = 0;
  for (std::size_t id : victims) {
    if (freed >= deficit) break;
    JobRecord& victim = jobs_[id];
    // A victim can finish while an earlier recall was in flight.
    if (victim.state != JobState::kRunning) continue;
    const std::int64_t donated = victim.runtime->donated_bytes();
    if (donated <= 0) continue;
    const std::int64_t want = std::min(deficit - freed, donated);
    // Cap the victim's quota below its current footprint BEFORE recalling,
    // so the freed bytes cannot be re-donated while the admission gate
    // waits for the next broadcast to show them.
    victim.ledger.quota_bytes =
        std::max<std::int64_t>(0, victim.ledger.charged_bytes - want);
    const std::int64_t got = co_await victim.runtime->reclaim(want);
    if (got > 0) {
      // Tighten to the footprint that actually remains (the recall may
      // have freed more or less than asked).
      if (victim.state == JobState::kRunning) {
        victim.ledger.quota_bytes = victim.ledger.charged_bytes;
      }
      freed += got;
      victim.reclaimed_bytes += got;
      ++victim.reclaim_events;
      ++stats_.reclaim_events;
      stats_.reclaimed_bytes += got;
    }
  }
  co_return freed;
}

sim::Process JobScheduler::run() {
  RMS_CHECK_MSG(!running_, "JobScheduler::run is once-only");
  running_ = true;
  sim::Simulation& sim = world_.sim();

  while (!drained()) {
    const Time now = sim.now();
    RMS_CHECK_MSG(cfg_.horizon <= 0 || now <= cfg_.horizon,
                  "scheduler horizon exceeded: a job is wedged");
    shed_expired(now);

    // Admission sweep: strict priority at the head, backfill behind it.
    const std::vector<std::size_t> order = admission_order(now);
    stats_.peak_queue_depth = std::max(stats_.peak_queue_depth, order.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      JobRecord& job = jobs_[order[k]];
      if (job.state != JobState::kQueued) continue;  // shed this sweep
      if (try_admit(job, now)) continue;
      ++stats_.admission_waits;
      if (k == 0 && cfg_.reclaim_enabled) {
        // Head-of-line blocked: reclaim the pool-byte deficit from
        // lower-priority tenants if slots are not the bottleneck.
        std::size_t free_slots = 0;
        for (char busy : slot_busy_) free_slots += busy == 0;
        const std::int64_t deficit =
            job.spec.demand_bytes - world_.pool_free_bytes();
        if (free_slots >= job.spec.slots && deficit > 0) {
          co_await reclaim_for(job.spec.priority, deficit);
          // Admission waits for the next monitor broadcast to report the
          // recovered capacity — the same availability lag every other
          // placement decision in the system lives with.
        }
      }
    }
    if (drained()) break;

    // Sleep to the next interesting instant: an arrival, a deadline, or
    // the periodic re-poll (completions are observed on the next sweep).
    Time next = now + cfg_.poll_interval;
    for (const JobRecord& j : jobs_) {
      if (j.state != JobState::kQueued) continue;
      if (j.spec.arrival > now) next = std::min(next, j.spec.arrival);
      if (j.spec.admission_deadline > 0) {
        const Time dl = j.spec.arrival + j.spec.admission_deadline;
        if (dl > now) next = std::min(next, dl);
      }
    }
    co_await sim.timeout(std::max<Time>(1, next - now));
  }

  sim.request_stop();
}

}  // namespace rms::sched
