// sched::World — the shared multi-tenant cluster.
//
// One simulation, one cluster, one donor pool, many jobs. Node layout:
//
//   node 0                      — the scheduler (admission broker lives here)
//   nodes 1 .. app_nodes        — application execution slots, leased to
//                                 jobs at admission
//   nodes app_nodes+1 .. +mem   — memory-available nodes (the donor pool),
//                                 shared by every running job
//
// The world owns everything that outlives a job: the memory servers and
// their availability monitors, one placement broker + availability client
// per slot (brokers persist across jobs; the scheduler attaches the running
// tenant's ledger at admission and detaches it at completion), and the
// scheduler's own broker on node 0 — its availability view is the admission
// gate's estimate of free donor memory, refreshed by the same broadcasts
// the slots see. Shortage broadcasts dispatch through the SlotTable to
// whatever store currently runs on the slot.
//
// No failure detectors: the multi-tenant world runs fault-free in this
// iteration (docs/SCHEDULER.md discusses composing the two subsystems).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/time.hpp"
#include "placement/placement.hpp"
#include "sched/job.hpp"

namespace rms::core {
class MemoryServer;
}
namespace rms::obs {
class TraceRecorder;
}

namespace rms::sched {

struct WorldConfig {
  std::size_t app_nodes = 8;    // leasable execution slots
  std::size_t memory_nodes = 8; // shared donor pool

  std::int64_t message_block_bytes = 4096;
  Time monitor_interval = sec(3);
  std::int64_t shortage_threshold_bytes = 256 << 10;
  placement::PolicyKind placement = placement::PolicyKind::kPaperRoundRobin;

  cluster::CostModel costs;
  std::uint64_t seed = 1;

  /// Shared event sink for every world daemon and job (null: tracing off).
  obs::TraceRecorder* trace = nullptr;
};

class World {
 public:
  World(sim::Simulation& sim, WorldConfig cfg);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Spawn the world daemons (servers, monitors, clients). Call once,
  /// before the scheduler runs.
  void start();

  // ---- topology ----
  net::NodeId scheduler_node() const { return 0; }
  net::NodeId app_node(std::size_t slot) const {
    return static_cast<net::NodeId>(1 + slot);
  }
  net::NodeId memory_node(std::size_t i) const {
    return static_cast<net::NodeId>(1 + cfg_.app_nodes + i);
  }
  std::size_t num_slots() const { return cfg_.app_nodes; }
  const std::vector<net::NodeId>& memory_ids() const { return memory_ids_; }

  sim::Simulation& sim() { return sim_; }
  cluster::Cluster& cluster() { return *cluster_; }
  const WorldConfig& config() const { return cfg_; }
  SlotTable& slots() { return slots_; }

  /// The slot's persistent placement broker (tenant ledgers attach here).
  placement::MemoryBroker& broker_at(std::size_t slot) {
    return *brokers_[slot];
  }
  /// The scheduler's availability view on node 0.
  placement::MemoryBroker& scheduler_broker() { return *sched_broker_; }

  core::MemoryServer& server_at(std::size_t i) { return *servers_[i]; }

  /// Admission estimate: free donor bytes as the scheduler currently sees
  /// them (sum of the last availability reports; 0 until the first
  /// broadcasts land, ~one monitor interval after start()).
  std::int64_t pool_free_bytes() const;

  /// Actual donated bytes currently parked on the servers (exact, not
  /// broadcast-delayed; reports and tests).
  std::int64_t pool_donated_bytes();

 private:
  sim::Simulation& sim_;
  WorldConfig cfg_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::vector<net::NodeId> memory_ids_;
  std::vector<net::NodeId> slot_ids_;

  std::vector<std::unique_ptr<core::MemoryServer>> servers_;
  std::vector<std::unique_ptr<placement::MemoryBroker>> brokers_;
  std::unique_ptr<placement::MemoryBroker> sched_broker_;
  SlotTable slots_;
  bool started_ = false;
};

}  // namespace rms::sched
