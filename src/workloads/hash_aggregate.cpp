#include "workloads/hash_aggregate.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "cluster/cluster.hpp"
#include "core/availability.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "obs/metrics.hpp"
#include "runtime/cpu_charger.hpp"
#include "runtime/runner.hpp"
#include "sched/job.hpp"
#include "sim/process.hpp"
#include "sim/simulation.hpp"
#include "transport/stream.hpp"
#include "transport/tags.hpp"
#include "transport/transport.hpp"

namespace rms::workloads {
namespace {

using cluster::Node;
using mining::Itemset;
using net::NodeId;
using runtime::CpuCharger;

/// Scan-phase payload: a message block of group keys, or the end-of-stream
/// marker a sender broadcasts after finishing its partition.
struct AggMsg {
  std::vector<mining::Item> items;
  bool eos = false;
};

/// Collect-phase payload: one node's owned (item, count) groups.
struct AggGroups {
  std::vector<mining::CountedItemset> groups;
};

mining::Itemset make_key(mining::Item item) {
  // A plain function because GCC 12 miscompiles initializer-list
  // construction inside coroutines ("array used as initializer").
  mining::Itemset s;
  s.push_back(item);
  return s;
}

class HashAggregateWorkload final : public runtime::Workload {
 public:
  explicit HashAggregateWorkload(const HashAggregateConfig& cfg) : cfg_(cfg) {
    RMS_CHECK(cfg_.app_nodes >= 1);
    RMS_CHECK(cfg_.hash_lines >= cfg_.app_nodes);
    RMS_CHECK_MSG(cfg_.memory_limit_bytes < 0 ||
                      cfg_.policy != core::SwapPolicy::kNoLimit,
                  "a memory limit needs a swap policy");
    RMS_CHECK_MSG(cfg_.memory_limit_bytes < 0 ||
                      !core::uses_remote_memory(cfg_.policy) ||
                      cfg_.memory_nodes > 0,
                  "remote policies need at least one memory-available node");
  }

  HashAggregateResult run();

  // ---- sched job mode (shared world; see sched/job.hpp) ----
  void launch(const sched::JobEnv& env, std::function<void()> on_done);
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes);
  std::int64_t donated_bytes() const;
  sched::JobReport harvest();

  // ---- runtime::Workload ----
  void register_phases(runtime::PhaseRegistry& phases) override {
    RMS_CHECK(phases.add("build") == kAggBuildPhase);
    RMS_CHECK(phases.add("scan") == kAggScanPhase);
    RMS_CHECK(phases.add("collect") == kAggCollectPhase);
  }
  bool done(std::size_t /*pass*/) const override { return false; }
  sim::Task<> run_phase(std::size_t idx, runtime::PhaseId phase,
                        std::size_t pass) override {
    switch (phase) {
      case kAggBuildPhase:
        co_await build(idx);
        break;
      case kAggScanPhase: {
        stores_[idx]->set_phase(core::HashLineStore::Phase::kCount);
        sim::Process sender = sim_->spawn(scan_sender(idx));
        sim::Process receiver = sim_->spawn(scan_receiver(idx));
        co_await sender;
        co_await receiver;
        break;
      }
      case kAggCollectPhase:
        co_await collect(idx);
        break;
      default:
        RMS_CHECK(false);
    }
    (void)pass;
  }
  void check_invariants(std::size_t idx) override {
    if (stores_[idx]) stores_[idx]->check_invariants();
  }

 private:
  // ---- topology helpers (uniform partition: line mod app_nodes) ----
  // Scheduled jobs execute on world-assigned slot nodes (ext_app_ids_);
  // the single-run world uses the identity layout.
  NodeId app_id(std::size_t idx) const {
    return ext_app_ids_.empty() ? static_cast<NodeId>(idx)
                                : ext_app_ids_[idx];
  }
  NodeId mem_id(std::size_t idx) const {
    return static_cast<NodeId>(cfg_.app_nodes + idx);
  }
  std::size_t global_line(const Itemset& key) const {
    return static_cast<std::size_t>(key.hash() % cfg_.hash_lines);
  }
  std::size_t owner_of_line(std::size_t gline) const {
    return gline % cfg_.app_nodes;
  }
  core::LineId local_line(std::size_t gline) const {
    return static_cast<core::LineId>(gline / cfg_.app_nodes);
  }
  std::size_t local_line_count(std::size_t idx) const {
    return (cfg_.hash_lines + cfg_.app_nodes - 1 - idx) / cfg_.app_nodes;
  }

  sim::Task<> build(std::size_t idx);
  sim::Process scan_sender(std::size_t idx);
  sim::Process scan_receiver(std::size_t idx);
  sim::Task<> collect(std::size_t idx);
  /// Database/partition/group-key preparation shared by both entry modes.
  void prepare_inputs();
  /// result_.exact: compare result_.groups to a scalar one-pass reference.
  void check_exactness();

  const HashAggregateConfig& cfg_;
  // Single-run mode owns its simulation and world; a scheduled job borrows
  // the shared ones and the owning members stay empty.
  sim::Simulation own_sim_;
  sim::Simulation* sim_ = &own_sim_;
  std::unique_ptr<cluster::Cluster> own_cluster_;
  cluster::Cluster* cluster_ = nullptr;
  std::vector<NodeId> ext_app_ids_;  // world slot ids (job mode)
  sched::SlotTable* slots_ = nullptr;
  std::unique_ptr<runtime::PhasedRunner> runner_;  // job mode only

  mining::TransactionDb generated_db_;
  const mining::TransactionDb* db_ = nullptr;
  std::vector<mining::TransactionDb> partitions_;

  std::vector<placement::MemoryBroker*> brokers_;
  std::vector<std::unique_ptr<placement::MemoryBroker>> own_brokers_;
  std::vector<std::unique_ptr<core::HashLineStore>> stores_;
  std::vector<std::unique_ptr<core::MemoryServer>> servers_;

  /// Host-precomputed group keys per owner: (local line, item).
  std::vector<std::vector<std::pair<core::LineId, mining::Item>>>
      groups_by_owner_;

  net::Tag tuple_tag_ = 0;
  net::Tag gather_tag_ = 0;

  HashAggregateResult result_;
};

// ---------------------------------------------------------------------------
// build: per-node store creation + owned-key inserts.
// ---------------------------------------------------------------------------

sim::Task<> HashAggregateWorkload::build(std::size_t idx) {
  Node& node = cluster_->node(app_id(idx));
  const cluster::CostModel& costs = cluster_->node(app_id(idx)).costs();

  core::HashLineStore::Config scfg;
  scfg.num_lines = local_line_count(idx);
  scfg.memory_limit_bytes = cfg_.memory_limit_bytes;
  scfg.policy = cfg_.memory_limit_bytes < 0 ? core::SwapPolicy::kNoLimit
                                            : cfg_.policy;
  scfg.eviction = cfg_.eviction;
  scfg.tiered_remote_budget_bytes = cfg_.tiered_remote_budget_bytes;
  scfg.message_block_bytes = cfg_.message_block_bytes;
  scfg.trace = cfg_.trace;
  stores_[idx] = std::make_unique<core::HashLineStore>(node, scfg,
                                                       brokers_[idx]);

  core::HashLineStore& store = *stores_[idx];
  CpuCharger charge(node, costs.per_probe);
  for (const auto& [line, item] : groups_by_owner_[idx]) {
    co_await store.insert(line, make_key(item));
    co_await charge.add(1);
  }
  co_await charge.flush();
}

// ---------------------------------------------------------------------------
// scan: partition scan ships keyed tuples; owners probe their store.
// ---------------------------------------------------------------------------

sim::Process HashAggregateWorkload::scan_sender(std::size_t idx) {
  Node& node = cluster_->node(app_id(idx));
  const mining::TransactionDb& part = partitions_[idx];
  const cluster::CostModel& costs = node.costs();

  // One byte-budgeted stream per destination, rounded to whole tuples.
  const std::int64_t tuple_wire_bytes = 8;  // item + framing
  const std::int64_t batch_capacity =
      std::max<std::int64_t>(1, cfg_.message_block_bytes / tuple_wire_bytes);
  std::vector<transport::Stream<AggMsg>> streams;
  streams.reserve(cfg_.app_nodes);
  for (std::size_t j = 0; j < cfg_.app_nodes; ++j) {
    streams.emplace_back(batch_capacity * tuple_wire_bytes);
  }
  auto flush = [&](std::size_t owner) -> sim::Task<> {
    if (streams[owner].empty()) co_return;
    auto closed = streams[owner].take();
    node.send_to(app_id(owner), tuple_tag_, closed.bytes,
                 std::move(closed.batch));
    co_await node.compute(costs.per_message_cpu);
  };

  // Scan the local partition from the data disk in io_block_bytes reads.
  const std::int64_t bytes_per_tx =
      part.empty() ? 1 : std::max<std::int64_t>(1, part.approx_bytes() /
                              static_cast<std::int64_t>(part.size()));
  std::int64_t pending_bytes = 0;
  CpuCharger parse(node, costs.per_tx_parse);
  CpuCharger gen(node, costs.per_itemset_generate);
  for (std::size_t t = 0; t < part.size(); ++t) {
    pending_bytes += bytes_per_tx;
    if (pending_bytes >= cfg_.io_block_bytes) {
      co_await node.data_disk().read(cfg_.io_block_bytes,
                                     disk::Access::kSequential);
      pending_bytes = 0;
    }
    co_await parse.add(1);
    co_await gen.add(static_cast<std::int64_t>(part.tx(t).size()));
    for (mining::Item item : part.tx(t)) {
      const std::size_t owner = owner_of_line(global_line(make_key(item)));
      transport::Stream<AggMsg>& stream = streams[owner];
      stream.open().items.push_back(item);
      stream.note(tuple_wire_bytes);
      if (stream.due()) co_await flush(owner);
    }
  }
  if (pending_bytes > 0) {
    co_await node.data_disk().read(pending_bytes, disk::Access::kSequential);
  }
  co_await parse.flush();
  co_await gen.flush();

  // Flush stragglers, then broadcast end-of-stream (FIFO per destination
  // keeps every data block ahead of the marker).
  for (std::size_t owner = 0; owner < cfg_.app_nodes; ++owner) {
    co_await flush(owner);
  }
  for (std::size_t owner = 0; owner < cfg_.app_nodes; ++owner) {
    AggMsg eos;
    eos.eos = true;
    node.send_to(app_id(owner), tuple_tag_, 16, std::move(eos));
    co_await node.compute(costs.per_message_cpu);
  }
}

sim::Process HashAggregateWorkload::scan_receiver(std::size_t idx) {
  Node& node = cluster_->node(app_id(idx));
  const cluster::CostModel& costs = node.costs();
  core::HashLineStore& store = *stores_[idx];

  std::size_t eos_seen = 0;
  transport::Inbox inbox(node, tuple_tag_);
  while (eos_seen < cfg_.app_nodes) {
    net::Message msg = co_await inbox.recv();
    const auto& data = msg.as<AggMsg>();
    if (data.eos) {
      ++eos_seen;
      continue;
    }
    co_await node.compute(costs.per_message_cpu +
                          costs.per_probe *
                              static_cast<std::int64_t>(data.items.size()));
    for (mining::Item item : data.items) {
      const Itemset key = make_key(item);
      const std::size_t gline = global_line(key);
      RMS_CHECK(owner_of_line(gline) == idx);
      co_await store.probe(local_line(gline), key);
    }
  }
}

// ---------------------------------------------------------------------------
// collect: fetch lines home, gather the global group table on node 0.
// ---------------------------------------------------------------------------

sim::Task<> HashAggregateWorkload::collect(std::size_t idx) {
  Node& node = cluster_->node(app_id(idx));
  const cluster::CostModel& costs = node.costs();
  core::HashLineStore& store = *stores_[idx];

  AggGroups local;
  co_await store.collect([&](const mining::CountedItemset& e) {
    if (e.count > 0) local.groups.push_back(e);
  });
  co_await node.compute(costs.per_probe *
                        static_cast<std::int64_t>(store.size()));

  // Group keys are owned disjointly, so local tables concatenate; gather
  // all-to-one instead of HPA's all-to-all large exchange.
  constexpr std::int64_t kEntryBytes = 12;  // item + count + framing
  if (idx != 0) {
    const std::int64_t payload = std::max<std::int64_t>(
        16, kEntryBytes * static_cast<std::int64_t>(local.groups.size()));
    node.send_to(app_id(0), gather_tag_, payload, std::move(local));
    co_await node.compute(costs.per_message_cpu);
    co_return;
  }

  std::vector<mining::CountedItemset> global = std::move(local.groups);
  transport::Inbox inbox(node, gather_tag_);
  for (std::size_t j = 0; j + 1 < cfg_.app_nodes; ++j) {
    net::Message msg = co_await inbox.recv();
    const auto& remote = msg.as<AggGroups>();
    co_await node.compute(costs.per_message_cpu);
    global.insert(global.end(), remote.groups.begin(), remote.groups.end());
  }
  std::sort(global.begin(), global.end(),
            [](const mining::CountedItemset& a,
               const mining::CountedItemset& b) { return a.items < b.items; });
  result_.groups = std::move(global);
}

// ---------------------------------------------------------------------------
// Top-level run.
// ---------------------------------------------------------------------------

void HashAggregateWorkload::prepare_inputs() {
  if (cfg_.shared_db != nullptr) {
    db_ = cfg_.shared_db;
  } else {
    mining::QuestGenerator gen(cfg_.workload);
    generated_db_ = gen.generate();
    db_ = &generated_db_;
  }
  RMS_CHECK(!db_->empty());
  partitions_ = db_->partition(cfg_.app_nodes);

  // Host-side key partition: every item that can appear is a group.
  groups_by_owner_.assign(cfg_.app_nodes, {});
  for (mining::Item item = 0; item < cfg_.workload.num_items; ++item) {
    const std::size_t gline = global_line(make_key(item));
    groups_by_owner_[owner_of_line(gline)].emplace_back(local_line(gline),
                                                        item);
  }
}

void HashAggregateWorkload::check_exactness() {
  // Scalar reference: one in-memory pass over the same database.
  std::vector<std::uint32_t> ref(cfg_.workload.num_items, 0);
  for (std::size_t t = 0; t < db_->size(); ++t) {
    for (mining::Item item : db_->tx(t)) {
      RMS_CHECK(item < ref.size());
      ++ref[item];
    }
  }
  result_.exact = [&] {
    std::size_t nonzero = 0;
    for (std::uint32_t c : ref) nonzero += c > 0;
    if (result_.groups.size() != nonzero) return false;
    for (const mining::CountedItemset& g : result_.groups) {
      if (g.items.size() != 1 || g.items[0] >= ref.size() ||
          g.count != ref[g.items[0]]) {
        return false;
      }
    }
    return true;
  }();
}

HashAggregateResult HashAggregateWorkload::run() {
  // World construction: the full HPA-style topology — memory servers and
  // availability monitors on memory nodes, a placement broker and
  // availability client per application node.
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg_.app_nodes + cfg_.memory_nodes;
  own_cluster_ = std::make_unique<cluster::Cluster>(*sim_, ccfg);
  cluster_ = own_cluster_.get();
  if (cfg_.profiler != nullptr) {
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      cluster_->node(static_cast<NodeId>(i)).set_profile_hook(cfg_.profiler);
    }
  }
  tuple_tag_ = transport::TagRegistry::global().register_service("agg_tuples");
  gather_tag_ = transport::TagRegistry::global().register_service("agg_gather");

  prepare_inputs();

  std::vector<NodeId> memory_ids;
  std::vector<NodeId> app_ids;
  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i)
    memory_ids.push_back(mem_id(i));
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) app_ids.push_back(app_id(i));

  servers_.resize(cfg_.memory_nodes);
  for (std::size_t i = 0; i < cfg_.memory_nodes; ++i) {
    Node& node = cluster_->node(mem_id(i));
    core::MemoryServer::Config mscfg;
    mscfg.message_block_bytes = cfg_.message_block_bytes;
    mscfg.trace = cfg_.trace;
    servers_[i] = std::make_unique<core::MemoryServer>(node, mscfg);
    sim_->spawn(servers_[i]->serve());
    sim_->spawn(core::availability_monitor(
        node, core::MonitorConfig{cfg_.monitor_interval, app_ids}));
  }
  own_brokers_.resize(cfg_.app_nodes);
  brokers_.resize(cfg_.app_nodes);
  stores_.resize(cfg_.app_nodes);
  for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
    own_brokers_[i] = std::make_unique<placement::MemoryBroker>(
        memory_ids, cfg_.placement, static_cast<std::uint64_t>(app_id(i)));
    brokers_[i] = own_brokers_[i].get();
    if (cfg_.trace != nullptr) {
      brokers_[i]->set_trace(cfg_.trace, static_cast<std::int32_t>(app_id(i)));
    }
    core::ClientConfig clcfg;
    clcfg.shortage_threshold_bytes = cfg_.shortage_threshold_bytes;
    sim_->spawn(core::availability_client(
        cluster_->node(app_id(i)), *brokers_[i], clcfg,
        [this, i](NodeId holder) -> sim::Task<> {
          if (stores_[i]) co_await stores_[i]->migrate_away(holder);
        }));
  }

  if (cfg_.metrics != nullptr) {
    for (std::size_t n = 0; n < cfg_.app_nodes; ++n) {
      const auto node = static_cast<std::int32_t>(n);
      cfg_.metrics->add_gauge("resident_bytes", node, [this, n] {
        return stores_[n] ? static_cast<double>(stores_[n]->resident_bytes())
                          : 0.0;
      });
      cfg_.metrics->add_gauge("lines_remote", node, [this, n] {
        return stores_[n] ? static_cast<double>(stores_[n]->remote_lines())
                          : 0.0;
      });
      cfg_.metrics->add_gauge("lines_disk", node, [this, n] {
        return stores_[n] ? static_cast<double>(stores_[n]->disk_lines())
                          : 0.0;
      });
    }
    sim_->spawn(obs::sample_process(*sim_, *cfg_.metrics));
  }

  // One pass of build/scan/collect under the generic phased runner.
  runtime::RunnerConfig rcfg;
  rcfg.participants = cfg_.app_nodes;
  rcfg.first_pass = 1;
  rcfg.max_pass = 1;
  rcfg.validate_invariants = cfg_.validate_invariants;
  // Let the first availability broadcasts land before any swap decision.
  rcfg.warmup = msec(10);
  rcfg.trace = cfg_.trace;
  runtime::PhasedRunner runner(*sim_, *this, rcfg);
  runner.start();
  sim_->run();
  RMS_CHECK_MSG(runner.finished(),
                "simulation drained before the aggregation finished");

  result_.total_time = runner.total_time();
  result_.passes = runner.passes();
  result_.phase_names = runner.phases().names();
  for (auto& s : stores_) {
    result_.pagefaults += s->pagefaults();
    result_.swap_outs += s->swap_outs();
    result_.updates_sent += s->updates_sent();
  }
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    Node& node = cluster_->node(static_cast<NodeId>(i));
    result_.stats.merge(node.stats());
    result_.stats.merge(node.data_disk().stats());
    result_.stats.merge(node.swap_disk().stats());
  }
  result_.stats.merge(cluster_->network().stats());

  check_exactness();

  // Destroy still-suspended daemon frames (monitors, servers) while the
  // cluster objects their locals reference are alive; drop gauges that
  // capture this workload before it dies (the recorded series stays).
  sim_->shutdown();
  if (cfg_.metrics != nullptr) cfg_.metrics->clear_gauges();
  return result_;
}

// ---------------------------------------------------------------------------
// Scheduled-job mode: run inside a shared sched::World.
// ---------------------------------------------------------------------------

void HashAggregateWorkload::launch(const sched::JobEnv& env,
                                   std::function<void()> on_done) {
  RMS_CHECK_MSG(cfg_.metrics == nullptr && cfg_.profiler == nullptr,
                "scheduled jobs do not own observability sinks");
  RMS_CHECK(env.sim != nullptr && env.cluster != nullptr);
  RMS_CHECK_MSG(env.app_nodes.size() == cfg_.app_nodes,
                "slot lease must match the job's participant count");
  RMS_CHECK(env.brokers.size() == cfg_.app_nodes);
  sim_ = env.sim;
  cluster_ = env.cluster;
  ext_app_ids_ = env.app_nodes;
  brokers_ = env.brokers;
  slots_ = env.slots;

  tuple_tag_ = transport::TagRegistry::global().register_service("agg_tuples");
  gather_tag_ = transport::TagRegistry::global().register_service("agg_gather");
  prepare_inputs();

  // Stores are created lazily in the build phase; bind the slots now so
  // world daemons can reach whatever store the slot carries at that point.
  stores_.resize(cfg_.app_nodes);
  if (slots_ != nullptr) {
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      slots_->bind(app_id(i), [this, i]() -> core::HashLineStore* {
        return stores_[i].get();
      });
    }
  }

  runtime::RunnerConfig rcfg;
  rcfg.participants = cfg_.app_nodes;
  rcfg.first_pass = 1;
  rcfg.max_pass = 1;
  rcfg.validate_invariants = cfg_.validate_invariants;
  // Availability broadcasts are already flowing in a long-lived world, but
  // keep the single-run warmup so a job admitted at t=0 behaves alike.
  rcfg.warmup = msec(10);
  rcfg.trace = cfg_.trace;
  rcfg.tracks.reserve(cfg_.app_nodes);
  for (NodeId id : ext_app_ids_) {
    rcfg.tracks.push_back(static_cast<std::int32_t>(id));
  }
  rcfg.on_finished = std::move(on_done);
  runner_ = std::make_unique<runtime::PhasedRunner>(*sim_, *this, rcfg);
  runner_->start();
}

sim::Task<std::int64_t> HashAggregateWorkload::reclaim(
    std::int64_t target_bytes) {
  std::int64_t freed = 0;
  for (auto& store : stores_) {
    if (freed >= target_bytes) break;
    if (store) freed += co_await store->reclaim(target_bytes - freed);
  }
  co_return freed;
}

std::int64_t HashAggregateWorkload::donated_bytes() const {
  std::int64_t sum = 0;
  for (const auto& store : stores_) {
    if (store) sum += store->remote_held_bytes();
  }
  return sum;
}

sched::JobReport HashAggregateWorkload::harvest() {
  sched::JobReport rep;
  rep.completed = runner_ != nullptr && runner_->finished();
  if (runner_ != nullptr) {
    rep.total_time = runner_->total_time();
    rep.passes = runner_->passes();
    rep.phase_names = runner_->phases().names();
  }
  for (const auto& store : stores_) {
    if (!store) continue;
    rep.pagefaults += store->pagefaults();
    rep.swap_outs += store->swap_outs();
    rep.updates_sent += store->updates_sent();
    rep.degraded_evictions += store->failover().degraded_evictions;
  }
  if (rep.completed) {
    check_exactness();
    rep.exact = result_.exact;
    rep.summary = "groups=" + std::to_string(result_.groups.size());
  }
  if (slots_ != nullptr) {
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      slots_->unbind(app_id(i));
    }
  }
  return rep;
}

/// Owns the config copy and the workload it parameterizes.
class HashAggregateJob final : public sched::JobRuntime {
 public:
  explicit HashAggregateJob(HashAggregateConfig cfg)
      : cfg_(std::move(cfg)), workload_(cfg_) {}

  const char* workload_name() const override { return "hash_aggregate"; }
  void launch(const sched::JobEnv& env,
              std::function<void()> on_done) override {
    workload_.launch(env, std::move(on_done));
  }
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes) override {
    return workload_.reclaim(target_bytes);
  }
  std::int64_t donated_bytes() const override {
    return workload_.donated_bytes();
  }
  sched::JobReport harvest() override { return workload_.harvest(); }

 private:
  HashAggregateConfig cfg_;
  HashAggregateWorkload workload_;
};

}  // namespace

HashAggregateResult run_hash_aggregate(const HashAggregateConfig& config) {
  HashAggregateWorkload workload(config);
  return workload.run();
}

sched::JobRuntimePtr make_hash_aggregate_job(HashAggregateConfig config) {
  return std::make_unique<HashAggregateJob>(std::move(config));
}

}  // namespace rms::workloads
