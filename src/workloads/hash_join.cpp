#include "workloads/hash_join.hpp"

#include <memory>
#include <unordered_map>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/availability.hpp"
#include "core/hash_line_store.hpp"
#include "core/memory_server.hpp"
#include "obs/metrics.hpp"
#include "runtime/cpu_charger.hpp"
#include "runtime/runner.hpp"
#include "sim/simulation.hpp"

namespace rms::workloads {
namespace {

using runtime::CpuCharger;

struct Row {
  mining::Item key = 0;
  std::uint32_t row_id = 0;
};

std::vector<Row> make_rows(std::int64_t n, std::uint32_t keys,
                           std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<Row> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    // Zipf-ish skew: a quarter of the rows hit a hot tenth of the keys.
    const mining::Item key = rng.bernoulli(0.25)
                                 ? rng.below(keys / 10 + 1)
                                 : rng.below(keys);
    rows.push_back(Row{key, static_cast<std::uint32_t>(i)});
  }
  return rows;
}

// Build-table entry for one R row: {join key, tagged row id}. A plain
// function because GCC 12 miscompiles initializer-list construction inside
// coroutines ("array used as initializer").
mining::Itemset make_entry(mining::Item key, std::uint32_t row_id) {
  mining::Itemset s;
  s.push_back(key);
  s.push_back(1'000'000u + row_id);
  return s;
}

class HashJoinWorkload final : public runtime::Workload {
 public:
  explicit HashJoinWorkload(const HashJoinConfig& cfg) : cfg_(cfg) {
    RMS_CHECK(cfg_.app_nodes >= 1);
    RMS_CHECK(cfg_.lines_per_node >= 1);
    RMS_CHECK_MSG(cfg_.memory_limit_bytes < 0 ||
                      cfg_.policy != core::SwapPolicy::kNoLimit,
                  "a memory limit needs a swap policy");
  }

  HashJoinResult run();

  // ---- sched job mode (shared world; see sched/job.hpp) ----
  void launch(const sched::JobEnv& env, std::function<void()> on_done);
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes);
  std::int64_t donated_bytes() const;
  sched::JobReport harvest();

  // ---- runtime::Workload ----
  void register_phases(runtime::PhaseRegistry& phases) override {
    RMS_CHECK(phases.add("build") == kJoinBuildPhase);
    RMS_CHECK(phases.add("probe") == kJoinProbePhase);
  }
  bool done(std::size_t /*pass*/) const override { return false; }
  sim::Task<> run_phase(std::size_t idx, runtime::PhaseId phase,
                        std::size_t pass) override {
    switch (phase) {
      case kJoinBuildPhase:
        co_await build(idx);
        break;
      case kJoinProbePhase:
        co_await probe(idx);
        break;
      default:
        RMS_CHECK(false);
    }
    (void)pass;
  }
  void check_invariants(std::size_t idx) override {
    if (stores_[idx]) stores_[idx]->check_invariants();
  }

 private:
  // Scheduled jobs execute on world-assigned slot nodes (ext_app_ids_);
  // the single-run world uses the identity layout.
  net::NodeId app_id(std::size_t idx) const {
    return ext_app_ids_.empty() ? static_cast<net::NodeId>(idx)
                                : ext_app_ids_[idx];
  }

  // Key -> (owner node, local line).
  std::pair<std::size_t, core::LineId> place(mining::Item key) const {
    const std::uint64_t h = (key * 0x9e3779b97f4a7c15ULL) >> 16;
    const std::size_t gline = h % (cfg_.lines_per_node * cfg_.app_nodes);
    return {gline % cfg_.app_nodes,
            static_cast<core::LineId>(gline / cfg_.app_nodes)};
  }

  sim::Task<> build(std::size_t idx) {
    cluster::Node& node = cluster_->node(app_id(idx));
    core::HashLineStore& store = *stores_[idx];
    // Per-row CPU is charged in chunks on the owning node with the same
    // CpuCharger the miner's scan loops use (tuple parse on build, hash
    // probe on probe), keeping events proportional to faults, not rows.
    CpuCharger parse(node, node.costs().per_tx_parse);
    for (const auto& [line, key, row_id] : build_by_node_[idx]) {
      co_await store.insert(line, make_entry(key, row_id));
      co_await parse.add(1);
    }
    co_await parse.flush();
    store.set_phase(core::HashLineStore::Phase::kCount);
  }

  sim::Task<> probe(std::size_t idx) {
    cluster::Node& node = cluster_->node(app_id(idx));
    core::HashLineStore& store = *stores_[idx];
    CpuCharger lookup(node, node.costs().per_probe);
    for (const auto& [line, key, row_id] : probe_by_node_[idx]) {
      output_ += co_await store.count_matches(line, key);
      co_await lookup.add(1);
      (void)row_id;
    }
    co_await lookup.flush();
  }

  struct PlacedRow {
    core::LineId line = 0;
    mining::Item key = 0;
    std::uint32_t row_id = 0;
  };

  /// Input generation, partitioning, and the scalar reference — shared by
  /// both entry modes.
  void prepare_inputs();
  /// One store per application node against that node's broker (both
  /// modes; stores precede the runner and live until harvest/teardown).
  void create_stores();

  const HashJoinConfig& cfg_;
  // Single-run mode owns its simulation and world; a scheduled job borrows
  // the shared ones and the owning members stay empty.
  sim::Simulation own_sim_;
  sim::Simulation* sim_ = &own_sim_;
  std::unique_ptr<cluster::Cluster> own_cluster_;
  cluster::Cluster* cluster_ = nullptr;
  std::vector<net::NodeId> ext_app_ids_;  // world slot ids (job mode)
  sched::SlotTable* slots_ = nullptr;
  std::unique_ptr<runtime::PhasedRunner> runner_;  // job mode only
  std::vector<std::unique_ptr<core::MemoryServer>> servers_;
  std::unique_ptr<placement::MemoryBroker> own_broker_;
  std::vector<placement::MemoryBroker*> brokers_;  // one per app node
  std::vector<std::unique_ptr<core::HashLineStore>> stores_;

  std::vector<std::vector<PlacedRow>> build_by_node_;
  std::vector<std::vector<PlacedRow>> probe_by_node_;
  std::uint64_t output_ = 0;
  HashJoinResult result_;
};

void HashJoinWorkload::prepare_inputs() {
  const std::vector<Row> build_rows =
      make_rows(cfg_.build_rows, cfg_.keys, cfg_.build_seed);
  const std::vector<Row> probe_rows =
      make_rows(cfg_.probe_rows, cfg_.keys, cfg_.probe_seed);
  build_by_node_.resize(cfg_.app_nodes);
  probe_by_node_.resize(cfg_.app_nodes);
  for (const Row& r : build_rows) {
    const auto placed = place(r.key);
    build_by_node_[placed.first].push_back(
        PlacedRow{placed.second, r.key, r.row_id});
  }
  for (const Row& r : probe_rows) {
    const auto placed = place(r.key);
    probe_by_node_[placed.first].push_back(
        PlacedRow{placed.second, r.key, r.row_id});
  }
  std::unordered_map<mining::Item, std::uint64_t> ref_counts;
  for (const Row& r : build_rows) ++ref_counts[r.key];
  for (const Row& r : probe_rows) {
    const auto it = ref_counts.find(r.key);
    if (it != ref_counts.end()) result_.expected += it->second;
  }
}

void HashJoinWorkload::create_stores() {
  stores_.resize(cfg_.app_nodes);
  for (std::size_t n = 0; n < cfg_.app_nodes; ++n) {
    core::HashLineStore::Config scfg;
    scfg.num_lines = cfg_.lines_per_node;
    scfg.memory_limit_bytes = cfg_.memory_limit_bytes;
    scfg.policy = cfg_.memory_limit_bytes < 0 ? core::SwapPolicy::kNoLimit
                                              : cfg_.policy;
    scfg.tiered_remote_budget_bytes = cfg_.tiered_remote_budget_bytes;
    scfg.trace = cfg_.trace;
    stores_[n] = std::make_unique<core::HashLineStore>(
        cluster_->node(app_id(n)), scfg, brokers_[n]);
  }
}

HashJoinResult HashJoinWorkload::run() {
  // World construction: application nodes first, then memory-available
  // nodes, one shared broker pre-seeded with their availability (this
  // workload exercises the swap path, not the monitor protocol).
  cluster::ClusterConfig ccfg;
  ccfg.num_nodes = cfg_.app_nodes + cfg_.memory_nodes;
  own_cluster_ = std::make_unique<cluster::Cluster>(*sim_, ccfg);
  cluster_ = own_cluster_.get();
  if (cfg_.profiler != nullptr) {
    for (std::size_t i = 0; i < cluster_->size(); ++i) {
      cluster_->node(static_cast<net::NodeId>(i))
          .set_profile_hook(cfg_.profiler);
    }
  }
  std::vector<net::NodeId> mem_ids;
  for (std::size_t m = 0; m < cfg_.memory_nodes; ++m) {
    const auto id = static_cast<net::NodeId>(cfg_.app_nodes + m);
    mem_ids.push_back(id);
    core::MemoryServer::Config mscfg;
    mscfg.trace = cfg_.trace;
    servers_.push_back(
        std::make_unique<core::MemoryServer>(cluster_->node(id), mscfg));
    sim_->spawn(servers_.back()->serve());
  }
  own_broker_ = std::make_unique<placement::MemoryBroker>(mem_ids);
  for (net::NodeId id : mem_ids) {
    own_broker_->update(core::AvailabilityInfo{id, 32 << 20, 1}, 0);
  }
  brokers_.assign(cfg_.app_nodes, own_broker_.get());
  create_stores();

  if (cfg_.metrics != nullptr) {
    for (std::size_t n = 0; n < cfg_.app_nodes; ++n) {
      core::HashLineStore& s = *stores_[n];
      const auto node = static_cast<std::int32_t>(n);
      cfg_.metrics->add_gauge("resident_bytes", node, [&s] {
        return static_cast<double>(s.resident_bytes());
      });
      cfg_.metrics->add_gauge("lines_remote", node, [&s] {
        return static_cast<double>(s.remote_lines());
      });
      cfg_.metrics->add_gauge("lines_disk", node, [&s] {
        return static_cast<double>(s.disk_lines());
      });
    }
    sim_->spawn(obs::sample_process(*sim_, *cfg_.metrics));
  }

  // Inputs, their per-node partition, and the scalar reference.
  prepare_inputs();

  // One pass of build + probe under the generic phased runner.
  runtime::RunnerConfig rcfg;
  rcfg.participants = cfg_.app_nodes;
  rcfg.first_pass = 1;
  rcfg.max_pass = 1;
  rcfg.validate_invariants = cfg_.validate_invariants;
  rcfg.trace = cfg_.trace;
  runtime::PhasedRunner runner(*sim_, *this, rcfg);
  runner.start();
  sim_->run();
  RMS_CHECK_MSG(runner.finished(), "simulation drained before the join did");

  result_.output = output_;
  result_.total_time = runner.total_time();
  result_.passes = runner.passes();
  result_.phase_names = runner.phases().names();
  for (auto& s : stores_) result_.pagefaults += s->pagefaults();
  for (std::size_t i = 0; i < cluster_->size(); ++i) {
    result_.stats.merge(cluster_->node(static_cast<net::NodeId>(i)).stats());
  }
  result_.stats.merge(cluster_->network().stats());

  // Destroy still-suspended daemon frames (servers) while the cluster
  // objects their locals reference are alive; the gauges registered above
  // capture stores that die with us — drop them (the series stays).
  sim_->shutdown();
  if (cfg_.metrics != nullptr) cfg_.metrics->clear_gauges();
  return result_;
}

// ---------------------------------------------------------------------------
// Scheduled-job mode: run inside a shared sched::World.
// ---------------------------------------------------------------------------

void HashJoinWorkload::launch(const sched::JobEnv& env,
                              std::function<void()> on_done) {
  RMS_CHECK_MSG(cfg_.metrics == nullptr && cfg_.profiler == nullptr,
                "scheduled jobs do not own observability sinks");
  RMS_CHECK(env.sim != nullptr && env.cluster != nullptr);
  RMS_CHECK_MSG(env.app_nodes.size() == cfg_.app_nodes,
                "slot lease must match the job's participant count");
  RMS_CHECK(env.brokers.size() == cfg_.app_nodes);
  sim_ = env.sim;
  cluster_ = env.cluster;
  ext_app_ids_ = env.app_nodes;
  brokers_ = env.brokers;
  slots_ = env.slots;

  create_stores();
  prepare_inputs();
  if (slots_ != nullptr) {
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      slots_->bind(app_id(i), [this, i]() -> core::HashLineStore* {
        return stores_[i].get();
      });
    }
  }

  runtime::RunnerConfig rcfg;
  rcfg.participants = cfg_.app_nodes;
  rcfg.first_pass = 1;
  rcfg.max_pass = 1;
  rcfg.validate_invariants = cfg_.validate_invariants;
  rcfg.trace = cfg_.trace;
  rcfg.tracks.reserve(cfg_.app_nodes);
  for (net::NodeId id : ext_app_ids_) {
    rcfg.tracks.push_back(static_cast<std::int32_t>(id));
  }
  rcfg.on_finished = std::move(on_done);
  runner_ = std::make_unique<runtime::PhasedRunner>(*sim_, *this, rcfg);
  runner_->start();
}

sim::Task<std::int64_t> HashJoinWorkload::reclaim(std::int64_t target_bytes) {
  std::int64_t freed = 0;
  for (auto& store : stores_) {
    if (freed >= target_bytes) break;
    if (store) freed += co_await store->reclaim(target_bytes - freed);
  }
  co_return freed;
}

std::int64_t HashJoinWorkload::donated_bytes() const {
  std::int64_t sum = 0;
  for (const auto& store : stores_) {
    if (store) sum += store->remote_held_bytes();
  }
  return sum;
}

sched::JobReport HashJoinWorkload::harvest() {
  sched::JobReport rep;
  rep.completed = runner_ != nullptr && runner_->finished();
  if (runner_ != nullptr) {
    rep.total_time = runner_->total_time();
    rep.passes = runner_->passes();
    rep.phase_names = runner_->phases().names();
  }
  for (const auto& store : stores_) {
    if (!store) continue;
    rep.pagefaults += store->pagefaults();
    rep.swap_outs += store->swap_outs();
    rep.updates_sent += store->updates_sent();
    rep.degraded_evictions += store->failover().degraded_evictions;
  }
  if (rep.completed) {
    result_.output = output_;
    rep.exact = result_.output == result_.expected;
    rep.summary = "output=" + std::to_string(result_.output);
  }
  if (slots_ != nullptr) {
    for (std::size_t i = 0; i < cfg_.app_nodes; ++i) {
      slots_->unbind(app_id(i));
    }
  }
  return rep;
}

/// Owns the config copy and the workload it parameterizes.
class HashJoinJob final : public sched::JobRuntime {
 public:
  explicit HashJoinJob(HashJoinConfig cfg)
      : cfg_(std::move(cfg)), workload_(cfg_) {}

  const char* workload_name() const override { return "hash_join"; }
  void launch(const sched::JobEnv& env,
              std::function<void()> on_done) override {
    workload_.launch(env, std::move(on_done));
  }
  sim::Task<std::int64_t> reclaim(std::int64_t target_bytes) override {
    return workload_.reclaim(target_bytes);
  }
  std::int64_t donated_bytes() const override {
    return workload_.donated_bytes();
  }
  sched::JobReport harvest() override { return workload_.harvest(); }

 private:
  HashJoinConfig cfg_;
  HashJoinWorkload workload_;
};

}  // namespace

HashJoinResult run_hash_join(const HashJoinConfig& config) {
  HashJoinWorkload workload(config);
  return workload.run();
}

sched::JobRuntimePtr make_hash_join_job(HashJoinConfig config) {
  return std::make_unique<HashJoinJob>(std::move(config));
}

}  // namespace rms::workloads
