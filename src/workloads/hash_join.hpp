// hash_join: distributed counting hash join R ⋈ S on the remote-memory
// machinery — the paper's "ad hoc query processing" domain.
//
// Build-side tuples are hashed into the same per-node hash-line stores the
// miner uses (entries encode (join key, row tag)); when the build side
// exceeds the per-node memory limit, lines spill to memory-available nodes
// exactly like candidate itemsets, and probe-side lookups fault them back
// (`count_matches`, a read query one-way updates cannot answer).
//
// The workload is a runtime::Workload with two phases ("build", "probe")
// driven by runtime::PhasedRunner: each application node builds and probes
// its own key partition in SPMD lockstep, so the phase skeleton (barriers,
// spans, invariant hooks) is shared with HPA instead of hand-rolled.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "core/policy.hpp"
#include "runtime/workload.hpp"
#include "sched/job.hpp"

namespace rms::obs {
class TraceRecorder;
class MetricsSampler;
class ProfileHook;
}

namespace rms::workloads {

// Phase ids in the runtime phase registry, in registration order.
inline constexpr std::size_t kJoinBuildPhase = 0;  // insert R partition
inline constexpr std::size_t kJoinProbePhase = 1;  // count S matches
inline constexpr std::size_t kJoinNumPhases = 2;

struct HashJoinConfig {
  std::size_t app_nodes = 4;
  std::size_t memory_nodes = 4;
  std::size_t lines_per_node = 512;

  std::int64_t build_rows = 40'000;
  std::int64_t probe_rows = 40'000;
  std::uint32_t keys = 5'000;
  std::uint64_t build_seed = 11;
  std::uint64_t probe_seed = 22;

  /// Per-node build-table limit; -1 disables (and the policy is ignored).
  std::int64_t memory_limit_bytes = 192'000;
  core::SwapPolicy policy = core::SwapPolicy::kRemoteSwap;
  /// kTiered only: remote-tier byte budget (-1 = unlimited).
  std::int64_t tiered_remote_budget_bytes = -1;

  /// Run HashLineStore::check_invariants at every phase barrier.
  bool validate_invariants = false;

  // ---- observability (all null by default: zero-cost when disabled) ----
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsSampler* metrics = nullptr;
  obs::ProfileHook* profiler = nullptr;
};

struct HashJoinResult {
  std::uint64_t output = 0;    // counting-join cardinality
  std::uint64_t expected = 0;  // in-memory scalar reference
  bool exact() const { return output == expected; }

  Time total_time = 0;
  std::vector<runtime::PassTiming> passes;  // one pass: build + probe
  std::vector<std::string> phase_names;
  std::int64_t pagefaults = 0;

  /// Merged counters from every node and the network.
  StatsRegistry stats;
};

HashJoinResult run_hash_join(const HashJoinConfig& config);

/// Scheduled-job mode: the same join parameterized by `config`, run inside
/// a shared sched::World on scheduler-leased slots. config.metrics and
/// config.profiler must be null; config.memory_nodes is ignored — the
/// world supplies the donor pool (and its brokers, fed by live
/// availability broadcasts rather than this module's pre-seeded view).
sched::JobRuntimePtr make_hash_join_job(HashJoinConfig config);

}  // namespace rms::workloads
