// hash_aggregate: remote-memory-backed distributed group-by over the
// transaction database — the third workload on the phased runtime.
//
// Group keys (items) are hash-partitioned across application execution
// nodes into the same per-node hash-line stores the miner uses; each node
// scans its local transaction partition and ships every item occurrence to
// the key's owner in message blocks (the HPA counting idiom), where it is
// counted by a store probe — so under a memory limit the aggregation table
// swaps to memory-available nodes and one-way remote updates apply just as
// they do to candidate itemsets. A final collect phase brings every line
// home and gathers the per-item counts on node 0.
//
// Three phases under runtime::PhasedRunner:
//   build   — create the store, insert one group entry per owned key
//   scan    — partition scan; ship keyed tuples to owners; owners probe
//   collect — fetch lines home; all-to-one count exchange to node 0
//
// The result carries the global (item, count) table plus an exactness flag
// against a scalar in-memory reference over the same database.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "core/policy.hpp"
#include "mining/generator.hpp"
#include "mining/itemset.hpp"
#include "mining/transaction_db.hpp"
#include "placement/placement.hpp"
#include "runtime/workload.hpp"
#include "sched/job.hpp"

namespace rms::obs {
class TraceRecorder;
class MetricsSampler;
class ProfileHook;
}

namespace rms::workloads {

// Phase ids in the runtime phase registry, in registration order.
inline constexpr std::size_t kAggBuildPhase = 0;
inline constexpr std::size_t kAggScanPhase = 1;
inline constexpr std::size_t kAggCollectPhase = 2;
inline constexpr std::size_t kAggNumPhases = 3;

struct HashAggregateConfig {
  std::size_t app_nodes = 4;
  std::size_t memory_nodes = 4;

  /// The database to aggregate (QUEST-generated unless shared_db is set).
  mining::QuestParams workload = mining::QuestParams::paper_experiment(0.01);
  const mining::TransactionDb* shared_db = nullptr;

  std::size_t hash_lines = 4096;            // global group hash lines
  std::int64_t message_block_bytes = 4096;  // tuple-shipping wire block
  std::int64_t io_block_bytes = 65536;      // partition scan read unit

  /// Per-node memory limit for the aggregation table; -1 disables.
  std::int64_t memory_limit_bytes = -1;
  core::SwapPolicy policy = core::SwapPolicy::kNoLimit;
  core::EvictionPolicy eviction = core::EvictionPolicy::kLru;
  placement::PolicyKind placement = placement::PolicyKind::kPaperRoundRobin;
  std::int64_t tiered_remote_budget_bytes = -1;

  Time monitor_interval = sec(3);
  std::int64_t shortage_threshold_bytes = 256 << 10;

  /// Run HashLineStore::check_invariants at every phase barrier.
  bool validate_invariants = false;

  // ---- observability (all null by default: zero-cost when disabled) ----
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsSampler* metrics = nullptr;
  obs::ProfileHook* profiler = nullptr;
};

struct HashAggregateResult {
  /// Global per-item counts, sorted by item, zero-count groups omitted —
  /// gathered on node 0 in the collect phase.
  std::vector<mining::CountedItemset> groups;
  /// groups == the scalar single-pass reference over the same database.
  bool exact = false;

  Time total_time = 0;
  std::vector<runtime::PassTiming> passes;  // one pass: build/scan/collect
  std::vector<std::string> phase_names;
  std::int64_t pagefaults = 0;
  std::int64_t swap_outs = 0;
  std::int64_t updates_sent = 0;

  /// Merged counters from every node, disk, and the network.
  StatsRegistry stats;
};

HashAggregateResult run_hash_aggregate(const HashAggregateConfig& config);

/// Scheduled-job mode: the same workload parameterized by `config`, run
/// inside a shared sched::World on scheduler-leased slots. config.metrics
/// and config.profiler must be null (the shared world cannot attribute
/// them per job); config.trace may point at the world's shared recorder.
sched::JobRuntimePtr make_hash_aggregate_job(HashAggregateConfig config);

}  // namespace rms::workloads
