#!/usr/bin/env python3
"""Continuous perf-regression baseline over the paper-reproduction benches.

Runs a fixed set of small bench recipes (fig4 policy comparison, fig5
migration, table3 partition skew -- all at --scale 0.01 so a full sweep
stays under a few minutes), extracts per-pass durations and per-category
attribution shares from the run artifacts, and either:

    --update   rewrite BENCH_BASELINE.json with the measured values
    --check    compare against BENCH_BASELINE.json; exit non-zero when any
               pass duration drifts more than --tolerance (relative, default
               5%) or any attribution share moves more than
               --share-tolerance (absolute, default 0.10)

Every invocation also writes a BENCH_<run-id>.json trajectory file next to
the baseline so CI can upload the measured point even when the check fails.

The simulator is deterministic, so "perf" here is simulated wall time: a
regression means the modelled system got slower (more faults, more blocking,
worse overlap), not that the host machine was busy. That is exactly the
quantity the paper's figures report, and it is stable enough for a 5% gate.

Stdlib only. Requires an already-built tree (--build-dir, default ./build).
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile

# Categories mirror src/obs/profile.cpp; shares are aggregated over nodes.
CATEGORIES = [
    "fault_in", "swap_out", "migrate", "serve", "rpc",
    "stream", "disk_io", "compute", "barrier_wait", "unattributed",
]

# recipe name -> (binary under <build-dir>/bench, extra args). Scale 0.01
# keeps each leg to seconds of host time while still swapping (the Table-3
# skew node holds ~15.4 MB of candidates against the 12 MB limit).
RECIPES = {
    "fig4": ("bench_fig4_policy_comparison",
             ["--scale", "0.01", "--no-ext", "--limit-mb", "12"]),
    "fig5": ("bench_fig5_migration",
             ["--scale", "0.01", "--limit-mb", "12"]),
    "table3": ("bench_table3_partition_skew", ["--scale", "0.01"]),
    # The non-mining workload on the phased runtime: a remote-swapped
    # group-by whose single pass covers build/scan/collect (defaults:
    # --scale 0.003, --limit-mb 0.02, --backend remote).
    "hash_aggregate": ("bench_workloads",
                       ["--workload", "hash_aggregate"]),
}

SCHEMA = "rmswap.bench_baseline/v1"


def run_recipe(build_dir, name):
    binary, args = RECIPES[name]
    path = os.path.join(build_dir, "bench", binary)
    if not os.path.exists(path):
        sys.exit(f"error: {path} not built (configure+build first)")
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "artifact.json")
        cmd = [path] + args + ["--json-out", out]
        print(f"[{name}] {' '.join(cmd)}", file=sys.stderr)
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(out, "r", encoding="utf-8") as f:
            return json.load(f)


def extract(doc):
    """Artifact -> {run label: [{k, duration_s, shares{cat: frac}}]}."""
    runs = {}
    for run in doc.get("runs", []):
        if not run.get("completed"):
            continue
        passes = []
        profile_passes = {p["k"]: p
                          for p in run.get("profile", {}).get("passes", [])}
        for p in run.get("passes", []):
            entry = {"k": p["k"], "duration_s": p["duration_s"]}
            prof = profile_passes.get(p["k"])
            if prof is not None:
                total = sum(n["duration_s"] for n in prof["nodes"])
                shares = {}
                for cat in CATEGORIES:
                    t = sum(n[f"{cat}_s"] for n in prof["nodes"])
                    shares[cat] = round(t / total, 6) if total > 0 else 0.0
                entry["shares"] = shares
            passes.append(entry)
        runs[run["label"]] = passes
    return runs


def measure(build_dir, recipes):
    return {name: extract(run_recipe(build_dir, name)) for name in recipes}


def compare(baseline, measured, tolerance, share_tolerance):
    problems = []

    def fail(msg):
        problems.append(msg)
        print(f"FAIL: {msg}", file=sys.stderr)

    for recipe, base_runs in baseline.get("recipes", {}).items():
        got_runs = measured.get(recipe)
        if got_runs is None:
            fail(f"{recipe}: recipe missing from this measurement")
            continue
        for label, base_passes in base_runs.items():
            got_passes = got_runs.get(label)
            if got_passes is None:
                fail(f"{recipe}/{label}: run missing (labels changed?)")
                continue
            got_by_k = {p["k"]: p for p in got_passes}
            for bp in base_passes:
                gp = got_by_k.get(bp["k"])
                if gp is None:
                    fail(f"{recipe}/{label}: pass {bp['k']} missing")
                    continue
                ref, now = bp["duration_s"], gp["duration_s"]
                rel = abs(now - ref) / ref if ref > 0 else 0.0
                status = "ok" if rel <= tolerance else "FAIL"
                print(f"  {status}: {recipe}/{label} pass {bp['k']}: "
                      f"{ref:.3f}s -> {now:.3f}s ({rel * 100:+.2f}%)")
                if rel > tolerance:
                    fail(f"{recipe}/{label} pass {bp['k']}: duration "
                         f"{ref:.6f}s -> {now:.6f}s, drift {rel * 100:.2f}% "
                         f"> {tolerance * 100:.1f}%")
                for cat, ref_share in bp.get("shares", {}).items():
                    now_share = gp.get("shares", {}).get(cat, 0.0)
                    if abs(now_share - ref_share) > share_tolerance:
                        fail(f"{recipe}/{label} pass {bp['k']}: {cat} share "
                             f"{ref_share:.3f} -> {now_share:.3f} (moved "
                             f"more than {share_tolerance:.2f})")
    return problems


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--update", action="store_true",
                      help="rewrite the baseline with measured values")
    mode.add_argument("--check", action="store_true",
                      help="compare measured values against the baseline")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree holding bench/ binaries")
    ap.add_argument("--baseline", default=None,
                    help="baseline path (default: BENCH_BASELINE.json next "
                         "to this script's repo root)")
    ap.add_argument("--tolerance", type=float, default=0.05,
                    help="relative pass-duration tolerance (default 0.05)")
    ap.add_argument("--share-tolerance", type=float, default=0.10,
                    help="absolute attribution-share tolerance (default "
                         "0.10)")
    ap.add_argument("--run-id", default="local",
                    help="suffix for the BENCH_<run-id>.json trajectory "
                         "file (e.g. the CI run number)")
    ap.add_argument("--out", default=None,
                    help="trajectory file path (default: "
                         "BENCH_<run-id>.json in the working directory)")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline_path = args.baseline or os.path.join(repo_root,
                                                  "BENCH_BASELINE.json")
    measured = measure(args.build_dir, RECIPES)

    # Always leave a trajectory point, pass or fail: CI uploads these so a
    # regression can be bisected from artifacts alone.
    out_path = args.out or f"BENCH_{args.run_id}.json"
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"schema": SCHEMA, "run_id": args.run_id,
                   "recipes": measured}, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"trajectory written to {out_path}", file=sys.stderr)

    if args.update:
        # No timestamps or host info: the baseline is checked in, and the
        # simulator is deterministic, so the file should only change when
        # the modelled performance does.
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump({"schema": SCHEMA, "tolerance": args.tolerance,
                       "recipes": measured}, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {baseline_path}", file=sys.stderr)
        return 0

    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read baseline {baseline_path}: {e} "
                 f"(run with --update to create it)")
    if baseline.get("schema") != SCHEMA:
        sys.exit(f"error: {baseline_path}: unexpected schema "
                 f"{baseline.get('schema')!r}")
    problems = compare(baseline, measured, args.tolerance,
                       args.share_tolerance)
    if problems:
        print(f"{len(problems)} perf-baseline problem(s)", file=sys.stderr)
        return 1
    print("perf baseline: all passes within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
