#!/usr/bin/env python3
"""Validate the observability output files the bench binaries emit.

Usage:
    tools/check_artifact.py --run-artifact fig4.json \
                            --trace trace.json \
                            --metrics metrics.json

Every file type is optional; pass the ones the bench produced. Exits
non-zero (with a message per problem) if a file fails validation, so CI can
gate on it. Stdlib only.
"""
import argparse
import json
import sys

_PROBLEMS = []


def problem(msg):
    _PROBLEMS.append(msg)
    print(f"FAIL: {msg}", file=sys.stderr)


def expect(cond, msg):
    if not cond:
        problem(msg)
    return cond


def load(path, what):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problem(f"{what} {path}: not readable/parseable JSON: {e}")
        return None


# One key per profiler category, in the profiler's priority order. The sum
# of these per node must equal the pass duration (the profiler attributes
# every nanosecond; "unattributed" is the explicit residual bucket).
_PROFILE_CATEGORIES = [
    "fault_in_s", "swap_out_s", "migrate_s", "serve_s", "rpc_s",
    "stream_s", "disk_io_s", "compute_s", "barrier_wait_s",
    "unattributed_s",
]


def check_profile_body(who, prof):
    for key in ("trace_dropped", "events_dropped"):
        expect(isinstance(prof.get(key), int) and prof[key] >= 0,
               f"{who}: profile.{key} missing or negative")
    expect(isinstance(prof.get("complete"), bool),
           f"{who}: profile.complete missing")
    # v2: the workload's registered phase names, indexed by the ids the
    # critical-path segments reference.
    names = prof.get("phases")
    expect(isinstance(names, list)
           and all(isinstance(n, str) for n in names),
           f"{who}: profile.phases missing or not a list of names")
    passes = prof.get("passes")
    if not expect(isinstance(passes, list) and passes,
                  f"{who}: profile.passes missing or empty"):
        return
    exact = prof.get("events_dropped", 1) == 0
    for p in passes:
        pw = f"{who} profile pass k={p.get('k')}"
        dur = p.get("duration_s")
        if not expect(isinstance(dur, (int, float)) and dur > 0,
                      f"{pw}: duration_s not positive"):
            continue
        nodes = p.get("nodes")
        if not expect(isinstance(nodes, list) and nodes,
                      f"{pw}: nodes missing or empty"):
            continue
        for n in nodes:
            nw = f"{pw} node {n.get('node')}"
            total = 0.0
            for cat in _PROFILE_CATEGORIES:
                v = n.get(cat)
                if not expect(isinstance(v, (int, float)) and v >= 0,
                              f"{nw}: {cat} missing or negative"):
                    break
                total += v
            else:
                ndur = n.get("duration_s", dur)
                # Exact in integer nanoseconds; 1e-6 relative covers the
                # double-to-decimal printing only. A degraded profiler
                # (events_dropped > 0) still sums exactly, but keep the
                # check scoped to the guarantee the code makes.
                if exact:
                    expect(abs(total - ndur) <= 1e-6 * max(ndur, 1e-9),
                           f"{nw}: categories sum to {total}, "
                           f"duration is {ndur}")
        waits = [s.get("barrier_wait_s", 0)
                 for s in p.get("stragglers", [])]
        expect(all(a <= b for a, b in zip(waits, waits[1:])),
               f"{pw}: stragglers not sorted by ascending wait")
        slow = [s.get("duration_ms", 0) for s in p.get("slowest", [])]
        expect(all(a >= b for a, b in zip(slow, slow[1:])),
               f"{pw}: slowest ops not sorted by descending duration")


_JOB_STATES = {"queued", "running", "completed", "shed"}

_SCHEDULER_COUNTERS = [
    "admitted", "completed", "shed", "reclaim_events", "reclaimed_bytes",
    "admission_waits", "peak_queue_depth", "peak_running",
]


def check_scheduler(path, doc):
    """Validate the multi-tenant 'scheduler' section (bench_ext_multitenant).

    Beyond types, the counts must be internally consistent: every job in a
    terminal state, stats matching the per-job records, and each completed
    job's timeline ordered arrival <= admitted <= finished.
    """
    sched = doc["scheduler"]
    who = f"{path} scheduler"
    if not expect(isinstance(sched, dict), f"{who}: not an object"):
        return
    for key in _SCHEDULER_COUNTERS:
        expect(isinstance(sched.get(key), int) and sched[key] >= 0,
               f"{who}: {key} missing or negative")
    jobs = sched.get("jobs")
    if not expect(isinstance(jobs, list) and jobs,
                  f"{who}: 'jobs' missing or empty"):
        return
    states = []
    reclaimed = 0
    for i, job in enumerate(jobs):
        jw = f"{who} jobs[{i}]"
        expect(job.get("id") == i, f"{jw}: id {job.get('id')!r} != index")
        for key in ("name", "workload", "state"):
            expect(isinstance(job.get(key), str) and job[key],
                   f"{jw}: {key} missing")
        state = job.get("state")
        expect(state in _JOB_STATES, f"{jw}: unknown state {state!r}")
        expect(state not in ("queued", "running"),
               f"{jw}: non-terminal state {state!r} after the run drained")
        states.append(state)
        reclaimed += job.get("reclaimed_bytes", 0)
        if state == "completed":
            arrival = job.get("arrival_s", -1)
            admitted = job.get("admitted_s", -1)
            finished = job.get("finished_s", -1)
            expect(0 <= arrival <= admitted <= finished,
                   f"{jw}: timeline {arrival}/{admitted}/{finished} not "
                   f"ordered arrival <= admitted <= finished")
        elif state == "shed":
            expect(job.get("admitted_s", -1) < 0,
                   f"{jw}: shed job has an admission time")
    expect(sched.get("completed") == states.count("completed"),
           f"{who}: completed={sched.get('completed')} but "
           f"{states.count('completed')} job(s) completed")
    expect(sched.get("shed") == states.count("shed"),
           f"{who}: shed={sched.get('shed')} but "
           f"{states.count('shed')} job(s) shed")
    expect(sched.get("admitted", 0) >= states.count("completed"),
           f"{who}: fewer admissions than completions")
    expect(sched.get("reclaimed_bytes") == reclaimed,
           f"{who}: reclaimed_bytes={sched.get('reclaimed_bytes')} but "
           f"per-job records sum to {reclaimed}")
    # Every job must have a matching run section carrying the marker.
    by_job = {run.get("job"): run for run in doc.get("runs", [])
              if "job" in run}
    for i, job in enumerate(jobs):
        run = by_job.get(i)
        if not expect(run is not None,
                      f"{who}: job {i} has no marked run section"):
            continue
        expect(run.get("label") == job.get("name"),
               f"{who}: job {i} run label {run.get('label')!r} != "
               f"name {job.get('name')!r}")
        expect(run.get("tenant") == job.get("tenant"),
               f"{who}: job {i} run tenant mismatch")
        expect(bool(run.get("completed")) == (job["state"] == "completed"),
               f"{who}: job {i} run completed={run.get('completed')!r} "
               f"but state is {job['state']!r}")


def check_run_artifact(path):
    doc = load(path, "run artifact")
    if doc is None:
        return
    expect(doc.get("schema") == "rmswap.run_artifact/v2",
           f"{path}: schema is {doc.get('schema')!r}")
    if "scheduler" in doc:
        check_scheduler(path, doc)
    runs = doc.get("runs")
    if not expect(isinstance(runs, list) and runs,
                  f"{path}: 'runs' missing or empty"):
        return
    for i, run in enumerate(runs):
        who = f"{path} runs[{i}]"
        expect(isinstance(run.get("label"), str) and run["label"],
               f"{who}: missing label")
        expect(isinstance(run.get("config"), dict),
               f"{who}: missing config object")
        if not run.get("completed"):
            continue
        expect(isinstance(run.get("total_time_s"), (int, float))
               and run["total_time_s"] > 0,
               f"{who}: total_time_s not positive")
        phase_names = run.get("phase_names")
        if phase_names is not None:
            expect(isinstance(phase_names, list)
                   and all(isinstance(n, str) for n in phase_names),
                   f"{who}: phase_names not a list of names")
        workload = run.get("workload")
        if workload is not None:
            expect(isinstance(workload, str) and workload,
                   f"{who}: workload not a non-empty name")
        passes = run.get("passes")
        if expect(isinstance(passes, list) and passes,
                  f"{who}: 'passes' missing or empty"):
            for p in passes:
                expect({"k", "duration_s"} <= set(p),
                       f"{who}: pass missing required keys")
                # Phase breakdowns are keyed by registry name ("<name>_s");
                # prologue passes omit the object entirely.
                phases = p.get("phases")
                if phases is None:
                    continue
                if not expect(isinstance(phases, dict) and phases,
                              f"{who}: pass 'phases' not a non-empty "
                              f"object"):
                    continue
                for name, v in phases.items():
                    expect(name.endswith("_s"),
                           f"{who}: phase key {name!r} not '<name>_s'")
                    expect(isinstance(v, (int, float)) and v >= 0,
                           f"{who}: phase {name} not a non-negative time")
                if phase_names is not None:
                    expect(set(phases) <= {n + "_s" for n in phase_names},
                           f"{who}: phase keys {sorted(phases)} not from "
                           f"phase_names {phase_names}")
        for section in ("counters", "summaries", "histograms", "failover"):
            expect(isinstance(run.get(section), dict),
                   f"{who}: '{section}' missing")
        for name, h in run.get("histograms", {}).items():
            expect(h.get("p50", 0) <= h.get("p95", 0) <= h.get("p99", 0),
                   f"{who}: histogram {name} percentiles not monotone")
        prof = run.get("profile")
        if prof is None and "job" in run:
            # Scheduler-run jobs share the world's clock with every other
            # tenant, so no per-job attribution profile exists; the
            # "job"/"tenant" markers opt the run out of the requirement.
            pass
        elif expect(isinstance(prof, dict),
                    f"{who}: completed run has no 'profile' section"):
            check_profile_body(who, prof)
        metrics = run.get("metrics")
        if metrics is not None:
            n_series = len(metrics.get("series", []))
            expect(all(len(row) == n_series
                       for row in metrics.get("samples", [])),
                   f"{who}: metrics rows don't match series layout")
    print(f"ok: {path}: {len(runs)} run(s)")


def check_trace(path):
    doc = load(path, "chrome trace")
    if doc is None:
        return
    events = doc.get("traceEvents")
    if not expect(isinstance(events, list) and events,
                  f"{path}: 'traceEvents' missing or empty"):
        return
    phases = {"X", "i", "M"}
    n_real = 0
    for ev in events:
        if not expect(ev.get("ph") in phases,
                      f"{path}: unexpected event phase {ev.get('ph')!r}"):
            return
        if ev["ph"] == "M":
            continue
        n_real += 1
        expect(isinstance(ev.get("ts"), (int, float)) and ev["ts"] >= 0,
               f"{path}: event without a timestamp: {ev}")
        expect(isinstance(ev.get("name"), str) and ev["name"],
               f"{path}: event without a name: {ev}")
        if ev["ph"] == "X":
            expect(isinstance(ev.get("dur"), (int, float)) and ev["dur"] >= 0,
                   f"{path}: span with bad duration: {ev}")
    expect(n_real > 0, f"{path}: only metadata events")
    print(f"ok: {path}: {n_real} event(s)")


def check_metrics(path):
    doc = load(path, "metrics series")
    if doc is None:
        return
    expect(doc.get("schema") == "rmswap.metrics/v1",
           f"{path}: schema is {doc.get('schema')!r}")
    runs = doc.get("runs")
    if not expect(isinstance(runs, list), f"{path}: 'runs' missing"):
        return
    for i, run in enumerate(runs):
        who = f"{path} runs[{i}]"
        n_series = len(run.get("series", []))
        t = run.get("t_s", [])
        samples = run.get("samples", [])
        expect(len(t) == len(samples),
               f"{who}: {len(t)} timestamps vs {len(samples)} sample rows")
        expect(all(len(row) == n_series for row in samples),
               f"{who}: sample rows don't match series layout")
        expect(all(a <= b for a, b in zip(t, t[1:])),
               f"{who}: timestamps not monotone")
    print(f"ok: {path}: {len(runs)} run(s)")


def check_profile(path):
    doc = load(path, "attribution profile")
    if doc is None:
        return
    expect(doc.get("schema") == "rmswap.profile/v2",
           f"{path}: schema is {doc.get('schema')!r}")
    runs = doc.get("runs")
    if not expect(isinstance(runs, list) and runs,
                  f"{path}: 'runs' missing or empty"):
        return
    for i, run in enumerate(runs):
        who = f"{path} runs[{i}]"
        expect(isinstance(run.get("label"), str) and run["label"],
               f"{who}: missing label")
        check_profile_body(who, run)
    print(f"ok: {path}: {len(runs)} run(s)")


def pass_digest(p):
    """The virtual-time content of one pass, layout-independent.

    Accepts both the v2 layout (a "phases" object keyed "<name>_s") and the
    pre-refactor flat keys (build_s/count_s/determine_s at top level), so a
    reference captured before the runtime port compares equal to an
    artifact produced after it iff the simulation behaved identically.
    """
    phases = {k: v for k, v in (p.get("phases") or {}).items() if v}
    if not phases:
        for key in ("build_s", "count_s", "determine_s"):
            if p.get(key):  # flat zeros mean "no phase loop ran"
                phases[key] = p[key]
    return {
        "k": p.get("k"),
        "candidates": p.get("candidates"),
        "large": p.get("large"),
        "duration_s": p.get("duration_s"),
        "max_pagefaults": p.get("max_pagefaults"),
        "pagefaults_per_node": p.get("pagefaults_per_node"),
        "swap_outs_per_node": p.get("swap_outs_per_node"),
        "updates_per_node": p.get("updates_per_node"),
        "phases": phases,
    }


def run_digest(run):
    return {
        "label": run.get("label"),
        "completed": run.get("completed"),
        "total_time_s": run.get("total_time_s"),
        "passes": [pass_digest(p) for p in run.get("passes", [])],
    }


def check_lockstep(artifact_path, ref_path):
    """Compare an artifact's virtual-time digest against a reference.

    The reference is either a full run artifact (old or new layout) or a
    digest file previously written by --dump-digest. Any numeric drift —
    one nanosecond in one phase of one run — fails.
    """
    doc = load(artifact_path, "run artifact")
    ref = load(ref_path, "lockstep reference")
    if doc is None or ref is None:
        return
    got = [run_digest(r) for r in doc.get("runs", [])]
    want = [run_digest(r) for r in ref.get("runs", [])]
    if not expect(len(got) == len(want),
                  f"lockstep: {len(got)} run(s) vs reference's "
                  f"{len(want)}"):
        return
    for g, w in zip(got, want):
        who = f"lockstep run {w['label']!r}"
        if not expect(g["label"] == w["label"],
                      f"{who}: label is {g['label']!r}"):
            continue
        for key in ("completed", "total_time_s"):
            expect(g[key] == w[key],
                   f"{who}: {key} {g[key]!r} != reference {w[key]!r}")
        if not expect(len(g["passes"]) == len(w["passes"]),
                      f"{who}: {len(g['passes'])} pass(es) vs reference's "
                      f"{len(w['passes'])}"):
            continue
        for gp, wp in zip(g["passes"], w["passes"]):
            for key, wv in wp.items():
                expect(gp.get(key) == wv,
                       f"{who} pass k={wp['k']}: {key} {gp.get(key)!r} "
                       f"!= reference {wv!r}")
    if not _PROBLEMS:
        print(f"ok: {artifact_path}: bit-identical to {ref_path} "
              f"({len(got)} run(s))")


def dump_digest(artifact_path, out_path):
    doc = load(artifact_path, "run artifact")
    if doc is None:
        return
    digest = {"schema": "rmswap.lockstep_digest/v1",
              "runs": [run_digest(r) for r in doc.get("runs", [])]}
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(digest, f, indent=1)
        f.write("\n")
    print(f"ok: digest of {artifact_path} written to {out_path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--run-artifact", help="rmswap.run_artifact/v2 file")
    ap.add_argument("--trace", help="Chrome trace_event file")
    ap.add_argument("--metrics", help="rmswap.metrics/v1 file")
    ap.add_argument("--profile", help="rmswap.profile/v2 file")
    ap.add_argument("--lockstep", metavar="REF",
                    help="with --run-artifact: require the artifact's "
                         "virtual-time digest to equal this reference "
                         "(a run artifact in the old or new layout, or a "
                         "--dump-digest file)")
    ap.add_argument("--dump-digest", metavar="OUT",
                    help="with --run-artifact: write the artifact's "
                         "lockstep digest here (for checking in as a "
                         "reference)")
    args = ap.parse_args()
    if not (args.run_artifact or args.trace or args.metrics
            or args.profile):
        ap.error("pass at least one of --run-artifact / --trace / "
                 "--metrics / --profile")
    if (args.lockstep or args.dump_digest) and not args.run_artifact:
        ap.error("--lockstep/--dump-digest require --run-artifact")
    if args.run_artifact:
        check_run_artifact(args.run_artifact)
        if args.lockstep:
            check_lockstep(args.run_artifact, args.lockstep)
        if args.dump_digest:
            dump_digest(args.run_artifact, args.dump_digest)
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics)
    if args.profile:
        check_profile(args.profile)
    return 1 if _PROBLEMS else 0


if __name__ == "__main__":
    sys.exit(main())
